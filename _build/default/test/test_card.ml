module Card = Msu_card.Card
module Solver = Msu_sat.Solver
module Lit = Msu_cnf.Lit

(* Exhaustive semantic check: an encoded bound over n inputs, with the
   inputs forced by assumptions to every possible assignment, must be
   satisfiable exactly when the popcount respects the bound. *)

let solver_sink () =
  let s = Solver.create ~track_proof:false () in
  let sink =
    Card.{ fresh_var = (fun () -> Solver.new_var s); emit = (fun c -> Solver.add_clause s c) }
  in
  (s, sink)

let inputs s n = Array.init n (fun _ -> Lit.pos (Solver.new_var s))

let assumptions_of_bits lits bits =
  Array.mapi (fun i l -> if bits land (1 lsl i) <> 0 then l else Lit.neg l) lits

let popcount n bits =
  let c = ref 0 in
  for i = 0 to n - 1 do
    if bits land (1 lsl i) <> 0 then incr c
  done;
  !c

let check_constraint name encode holds n =
  let s, sink = solver_sink () in
  let lits = inputs s n in
  encode sink lits;
  for bits = 0 to (1 lsl n) - 1 do
    let expected = holds (popcount n bits) in
    let got = Solver.solve ~assumptions:(assumptions_of_bits lits bits) s in
    let got_sat = got = Solver.Sat in
    if got_sat <> expected then
      Alcotest.failf "%s: n=%d bits=%d expected %b got %b" name n bits expected got_sat
  done

let exhaustive_at_most enc () =
  for n = 1 to 6 do
    for k = 0 to n do
      check_constraint
        (Printf.sprintf "at_most %s k=%d" (Card.encoding_to_string enc) k)
        (fun sink lits -> Card.at_most sink enc lits k)
        (fun c -> c <= k)
        n
    done
  done

let exhaustive_at_least enc () =
  for n = 1 to 6 do
    for k = 0 to n do
      check_constraint
        (Printf.sprintf "at_least %s k=%d" (Card.encoding_to_string enc) k)
        (fun sink lits -> Card.at_least sink enc lits k)
        (fun c -> c >= k)
        n
    done
  done

let exhaustive_exactly enc () =
  for n = 1 to 5 do
    for k = 0 to n do
      check_constraint
        (Printf.sprintf "exactly %s k=%d" (Card.encoding_to_string enc) k)
        (fun sink lits -> Card.exactly sink enc lits k)
        (fun c -> c = k)
        n
    done
  done

let test_negated_literal_inputs () =
  (* Encodings must accept arbitrary literals, not only positive ones. *)
  List.iter
    (fun enc ->
      let s, sink = solver_sink () in
      let vars = inputs s 4 in
      let lits = Array.mapi (fun i l -> if i mod 2 = 0 then Lit.neg l else l) vars in
      Card.at_most sink enc lits 1;
      for bits = 0 to 15 do
        let count =
          Array.to_list lits
          |> List.mapi (fun i l ->
                 let v = bits land (1 lsl i) <> 0 in
                 if Lit.sign l then v else not v)
          |> List.filter Fun.id |> List.length
        in
        let got = Solver.solve ~assumptions:(assumptions_of_bits vars bits) s in
        if (got = Solver.Sat) <> (count <= 1) then
          Alcotest.failf "negated inputs %s bits=%d" (Card.encoding_to_string enc) bits
      done)
    Card.all_encodings

let test_vacuous_and_impossible () =
  List.iter
    (fun enc ->
      (* k >= n: no clauses at all. *)
      let emitted = ref 0 in
      let sink =
        Card.{ fresh_var = (fun () -> 0); emit = (fun _ -> incr emitted) }
      in
      Card.at_most sink enc [| Lit.pos 0; Lit.pos 1 |] 2;
      Alcotest.(check int)
        (Card.encoding_to_string enc ^ " vacuous emits nothing")
        0 !emitted;
      (* k < 0: empty clause. *)
      let s, sink = solver_sink () in
      let lits = inputs s 2 in
      Card.at_most sink enc lits (-1);
      Alcotest.(check bool)
        (Card.encoding_to_string enc ^ " negative bound unsat")
        false (Solver.okay s);
      (* at_least more than n: empty clause. *)
      let s2, sink2 = solver_sink () in
      let lits2 = inputs s2 2 in
      Card.at_least sink2 enc lits2 3;
      Alcotest.(check bool)
        (Card.encoding_to_string enc ^ " overfull atleast unsat")
        false (Solver.okay s2))
    Card.all_encodings

let test_at_most_one () =
  let s, sink = solver_sink () in
  let lits = inputs s 5 in
  Card.at_most_one sink lits;
  for bits = 0 to 31 do
    let got = Solver.solve ~assumptions:(assumptions_of_bits lits bits) s in
    if (got = Solver.Sat) <> (popcount 5 bits <= 1) then
      Alcotest.failf "at_most_one bits=%d" bits
  done

let test_exactly_one () =
  let s, sink = solver_sink () in
  let lits = inputs s 4 in
  Card.exactly_one sink lits;
  for bits = 0 to 15 do
    let got = Solver.solve ~assumptions:(assumptions_of_bits lits bits) s in
    if (got = Solver.Sat) <> (popcount 4 bits = 1) then
      Alcotest.failf "exactly_one bits=%d" bits
  done

let test_totalizer_tree_outputs () =
  let s, sink = solver_sink () in
  let lits = inputs s 5 in
  let tree = Card.Totalizer_tree.build sink lits in
  let outs = Card.Totalizer_tree.outputs tree in
  Alcotest.(check int) "five outputs" 5 (Array.length outs);
  (* Under each input assignment, output j must equal (count >= j+1). *)
  for bits = 0 to 31 do
    let c = popcount 5 bits in
    for j = 0 to 4 do
      let expect = c >= j + 1 in
      let assumption = if expect then Lit.neg outs.(j) else outs.(j) in
      let assumps = Array.append (assumptions_of_bits lits bits) [| assumption |] in
      (* Forcing the output to the wrong value must be unsat. *)
      if Solver.solve ~assumptions:assumps s = Solver.Sat then
        Alcotest.failf "totalizer output wrong: bits=%d j=%d" bits j
    done
  done

let test_totalizer_tree_assumption_bounds () =
  let s, sink = solver_sink () in
  let lits = inputs s 4 in
  let tree = Card.Totalizer_tree.build sink lits in
  Alcotest.(check bool)
    "bound >= n is vacuous" true
    (Card.Totalizer_tree.at_most_assumption tree 4 = None);
  for k = 0 to 3 do
    match Card.Totalizer_tree.at_most_assumption tree k with
    | None -> Alcotest.fail "expected an assumption literal"
    | Some bound ->
        for bits = 0 to 15 do
          let assumps = Array.append (assumptions_of_bits lits bits) [| bound |] in
          let got = Solver.solve ~assumptions:assumps s in
          if (got = Solver.Sat) <> (popcount 4 bits <= k) then
            Alcotest.failf "totalizer bound k=%d bits=%d" k bits
        done
  done

let test_encoding_names () =
  List.iter
    (fun enc ->
      Alcotest.(check bool)
        "name round trip" true
        (Card.encoding_of_string (Card.encoding_to_string enc) = Some enc))
    Card.all_encodings;
  Alcotest.(check bool) "unknown name" true (Card.encoding_of_string "nope" = None)

let prop_random_bound_respected =
  QCheck.Test.make ~name:"encodings agree on random bounds" ~count:60
    QCheck.(triple (int_range 1 7) (int_range 0 7) small_int)
    (fun (n, k, bits) ->
      let k = min k n in
      let bits = bits land ((1 lsl n) - 1) in
      List.for_all
        (fun enc ->
          let s, sink = solver_sink () in
          let lits = inputs s n in
          Card.at_most sink enc lits k;
          let got = Solver.solve ~assumptions:(assumptions_of_bits lits bits) s in
          (got = Solver.Sat) = (popcount n bits <= k))
        Card.all_encodings)


(* ---------------- generalized totalizer (weighted sums) ---------------- *)

let weighted_sum lits_weights bits =
  let sum = ref 0 in
  Array.iteri (fun i (_, w) -> if bits land (1 lsl i) <> 0 then sum := !sum + w) lits_weights;
  !sum

let test_gte_at_most_exhaustive () =
  let st = Random.State.make [| 31 |] in
  for _round = 1 to 25 do
    let n = 1 + Random.State.int st 5 in
    let s, sink = solver_sink () in
    let lits = inputs s n in
    let weighted = Array.map (fun l -> (l, 1 + Random.State.int st 5)) lits in
    let total = Array.fold_left (fun a (_, w) -> a + w) 0 weighted in
    let k = Random.State.int st (total + 2) in
    Msu_card.Gte.at_most sink weighted k;
    for bits = 0 to (1 lsl n) - 1 do
      let expected = weighted_sum weighted bits <= k in
      let got = Solver.solve ~assumptions:(assumptions_of_bits lits bits) s in
      if (got = Solver.Sat) <> expected then
        Alcotest.failf "gte n=%d k=%d bits=%d" n k bits
    done
  done

let test_gte_outputs_semantics () =
  let s, sink = solver_sink () in
  let lits = inputs s 3 in
  let weighted = [| (lits.(0), 2); (lits.(1), 3); (lits.(2), 2) |] in
  let gte = Msu_card.Gte.build sink ~cap:7 weighted in
  let outs = Msu_card.Gte.outputs gte in
  (* Attainable sums: 2, 3, 4, 5, 7 (capped at 7). *)
  Alcotest.(check (list int)) "attainable values" [ 2; 3; 4; 5; 7 ] (List.map fst outs);
  (* Outputs above the attained sum are never forced (no
     over-implication): assuming all of them false stays satisfiable. *)
  for bits = 0 to 7 do
    let sum = weighted_sum weighted bits in
    let negations =
      List.filter_map
        (fun (v, l) -> if v > sum then Some (Msu_cnf.Lit.neg l) else None)
        outs
    in
    let assumps = Array.append (assumptions_of_bits lits bits) (Array.of_list negations) in
    if Solver.solve ~assumptions:assumps s <> Solver.Sat then
      Alcotest.failf "outputs above sum %d over-implied at bits=%d" sum bits;
    (* The output matching the exact attained sum is forced. *)
    if sum > 0 then begin
      let l = List.assoc sum outs in
      let assumps =
        Array.append (assumptions_of_bits lits bits) [| Msu_cnf.Lit.neg l |]
      in
      if Solver.solve ~assumptions:assumps s = Solver.Sat then
        Alcotest.failf "output %d not implied at bits=%d" sum bits
    end
  done

let test_gte_assumptions () =
  let s, sink = solver_sink () in
  let lits = inputs s 4 in
  let weighted = Array.map (fun l -> (l, 2)) lits in
  let gte = Msu_card.Gte.build sink ~cap:9 weighted in
  for k = 0 to 8 do
    let bound = Array.of_list (Msu_card.Gte.at_most_assumptions gte k) in
    for bits = 0 to 15 do
      let assumps = Array.append (assumptions_of_bits lits bits) bound in
      let got = Solver.solve ~assumptions:assumps s in
      if (got = Solver.Sat) <> (weighted_sum weighted bits <= k) then
        Alcotest.failf "gte assumption bound k=%d bits=%d" k bits
    done
  done

let test_gte_guards () =
  let _, sink = solver_sink () in
  Alcotest.check_raises "zero weight" (Invalid_argument "Gte.build: non-positive weight")
    (fun () -> ignore (Msu_card.Gte.build sink ~cap:3 [| (Msu_cnf.Lit.pos 0, 0) |]));
  Alcotest.check_raises "zero cap" (Invalid_argument "Gte.build: non-positive cap")
    (fun () -> ignore (Msu_card.Gte.build sink ~cap:0 [| (Msu_cnf.Lit.pos 0, 1) |]));
  (* Negative bound is an immediate contradiction. *)
  let s2, sink2 = solver_sink () in
  let lits = inputs s2 2 in
  Msu_card.Gte.at_most sink2 (Array.map (fun l -> (l, 2)) lits) (-1);
  Alcotest.(check bool) "negative bound unsat" false (Solver.okay s2)

let prop_gte_matches_card =
  QCheck.Test.make ~name:"gte with unit weights agrees with totalizer" ~count:40
    QCheck.(pair (int_range 1 6) (int_range 0 6))
    (fun (n, k) ->
      let k = min k n in
      let check enc_at_most =
        let s, sink = solver_sink () in
        let lits = inputs s n in
        enc_at_most sink lits k;
        List.init (1 lsl n) (fun bits ->
            Solver.solve ~assumptions:(assumptions_of_bits lits bits) s = Solver.Sat)
      in
      check (fun sink lits k ->
          Msu_card.Gte.at_most sink (Array.map (fun l -> (l, 1)) lits) k)
      = check (fun sink lits k -> Card.at_most sink Card.Totalizer lits k))

let suite =
  let enc_cases name f =
    List.map
      (fun enc ->
        Alcotest.test_case
          (Printf.sprintf "%s %s" name (Card.encoding_to_string enc))
          `Quick (f enc))
      Card.all_encodings
  in
  enc_cases "at_most exhaustive" exhaustive_at_most
  @ enc_cases "at_least exhaustive" exhaustive_at_least
  @ enc_cases "exactly exhaustive" exhaustive_exactly
  @ [
      Alcotest.test_case "negated literal inputs" `Quick test_negated_literal_inputs;
      Alcotest.test_case "vacuous and impossible bounds" `Quick test_vacuous_and_impossible;
      Alcotest.test_case "at_most_one" `Quick test_at_most_one;
      Alcotest.test_case "exactly_one" `Quick test_exactly_one;
      Alcotest.test_case "totalizer tree outputs" `Quick test_totalizer_tree_outputs;
      Alcotest.test_case "totalizer tree bounds" `Quick test_totalizer_tree_assumption_bounds;
      Alcotest.test_case "encoding names" `Quick test_encoding_names;
      QCheck_alcotest.to_alcotest prop_random_bound_respected;
      Alcotest.test_case "gte at_most exhaustive" `Quick test_gte_at_most_exhaustive;
      Alcotest.test_case "gte output semantics" `Quick test_gte_outputs_semantics;
      Alcotest.test_case "gte assumption bounds" `Quick test_gte_assumptions;
      Alcotest.test_case "gte guards" `Quick test_gte_guards;
      QCheck_alcotest.to_alcotest prop_gte_matches_card;
    ]
