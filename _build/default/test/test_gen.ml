module Formula = Msu_cnf.Formula
module Wcnf = Msu_cnf.Wcnf
module Solver = Msu_sat.Solver
module Gen = Msu_gen
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let is_unsat f =
  let s = Solver.create ~track_proof:false () in
  Formula.iter_clauses (fun _ c -> Solver.add_clause s c) f;
  Solver.solve s = Solver.Unsat

let test_php () =
  for n = 1 to 5 do
    let f = Gen.Php.formula n in
    Alcotest.(check int)
      (Printf.sprintf "clause count n=%d" n)
      (Gen.Php.num_clauses n) (Formula.num_clauses f);
    Alcotest.(check bool) (Printf.sprintf "php %d unsat" n) true (is_unsat f)
  done;
  Alcotest.check_raises "php 0 rejected"
    (Invalid_argument "Php.formula: need at least one hole") (fun () ->
      ignore (Gen.Php.formula 0))

let test_random_cnf () =
  let st = Random.State.make [| 5 |] in
  let f = Gen.Random_cnf.ksat st ~n_vars:10 ~n_clauses:30 ~k:3 in
  Alcotest.(check int) "clauses" 30 (Formula.num_clauses f);
  Formula.iter_clauses
    (fun _ c ->
      Alcotest.(check int) "k distinct vars" 3
        (List.length
           (List.sort_uniq compare
              (Array.to_list (Array.map Msu_cnf.Lit.var c)))))
    f

let test_unsat_ksat () =
  let st = Random.State.make [| 6 |] in
  let f = Gen.Random_cnf.unsat_ksat st ~n_vars:20 ~ratio:7.0 ~k:3 in
  Alcotest.(check bool) "verified unsat" true (is_unsat f);
  Alcotest.(check int) "clause count" 140 (Formula.num_clauses f)

let test_bmc_counter_unsat () =
  List.iter
    (fun depth ->
      let f = Gen.Bmc.counter_formula ~width:4 ~limit:14 ~target:15 ~depth in
      Alcotest.(check bool) (Printf.sprintf "depth %d unsat" depth) true (is_unsat f))
    [ 1; 5; 12 ]

let test_bmc_counter_simulation () =
  (* Cross-check the spec against direct simulation: always-enabled
     inputs never reach the unreachable target. *)
  let spec = Gen.Bmc.counter_spec ~width:4 ~limit:9 ~target:9 in
  let frames k = Array.init k (fun _ -> [| true |]) in
  for k = 1 to 12 do
    Alcotest.(check bool)
      (Printf.sprintf "no violation at depth %d" k)
      false
      (Msu_circuit.Unroll.simulate spec ~inputs:(frames k))
  done;
  let f = Gen.Bmc.counter_formula ~width:4 ~limit:9 ~target:9 ~depth:12 in
  Alcotest.(check bool) "target=limit unreachable" true (is_unsat f)

let test_bmc_lfsr_unsat () =
  List.iter
    (fun depth ->
      let f = Gen.Bmc.lfsr_formula ~width:5 ~taps:[ 2 ] ~depth in
      Alcotest.(check bool) (Printf.sprintf "lfsr depth %d unsat" depth) true (is_unsat f))
    [ 1; 4; 10 ]

let test_bmc_guards () =
  Alcotest.check_raises "bad counter params"
    (Invalid_argument "Bmc.counter_spec: need 0 < limit <= target < 2^width")
    (fun () -> ignore (Gen.Bmc.counter_spec ~width:3 ~limit:9 ~target:9))

let test_equiv_unsat () =
  let st = Random.State.make [| 11 |] in
  for _ = 1 to 5 do
    let f = Gen.Equiv.instance st ~n_inputs:5 ~n_gates:40 ~n_outputs:3 in
    Alcotest.(check bool) "equiv miter unsat" true (is_unsat f)
  done

let test_atpg_unsat () =
  let st = Random.State.make [| 13 |] in
  for _ = 1 to 5 do
    let f = Gen.Atpg.instance st ~n_inputs:5 ~n_gates:30 ~n_outputs:2 ~n_faults:2 in
    Alcotest.(check bool) "redundant fault untestable" true (is_unsat f)
  done

let test_atpg_equivalence () =
  let st = Random.State.make [| 14 |] in
  let nl = Msu_circuit.Netlist.random st ~n_inputs:4 ~n_gates:20 ~n_outputs:2 in
  let good, faulty = Gen.Atpg.plant_redundancy st nl ~n_faults:2 in
  for bits = 0 to 15 do
    let inputs = Array.init 4 (fun i -> bits land (1 lsl i) <> 0) in
    Alcotest.(check bool)
      (Printf.sprintf "same outputs bits=%d" bits)
      true
      (Msu_circuit.Netlist.eval_outputs good inputs
      = Msu_circuit.Netlist.eval_outputs faulty inputs)
  done

let test_debug_partial_optimum_is_one () =
  let st = Random.State.make [| 21 |] in
  for _ = 1 to 3 do
    let inst =
      Gen.Debug.instance st ~n_inputs:4 ~n_gates:12 ~n_outputs:2 ~n_vectors:3
        ~encoding:`Partial
    in
    let r = M.solve M.Msu4_v2 inst.Gen.Debug.wcnf in
    (match r.T.outcome with
    | T.Optimum 1 -> ()
    | o -> Alcotest.failf "expected optimum 1, got %a" T.pp_outcome o);
    (* The model's suspected gates are exactly one gate. *)
    match r.T.model with
    | None -> Alcotest.fail "no model"
    | Some m ->
        let suspects =
          Array.to_list inst.Gen.Debug.relax_vars
          |> List.filter (fun v -> v < Array.length m && m.(v))
        in
        Alcotest.(check int) "one suspect gate" 1 (List.length suspects)
  done

let test_debug_plain_unsat_cnf () =
  let st = Random.State.make [| 22 |] in
  let inst =
    Gen.Debug.instance st ~n_inputs:4 ~n_gates:12 ~n_outputs:2 ~n_vectors:3
      ~encoding:`Plain
  in
  Alcotest.(check int) "no hard clauses" 0 (Wcnf.num_hard inst.Gen.Debug.wcnf);
  Alcotest.(check bool)
    "plain debug CNF unsat" true
    (is_unsat (Wcnf.to_formula inst.Gen.Debug.wcnf))

let test_suites_deterministic () =
  let a = Gen.Suites.industrial ~scale:0.3 ~seed:3 () in
  let b = Gen.Suites.industrial ~scale:0.3 ~seed:3 () in
  Alcotest.(check (list string))
    "same names"
    (List.map (fun i -> i.Gen.Suites.name) a)
    (List.map (fun i -> i.Gen.Suites.name) b);
  List.iter2
    (fun x y ->
      Alcotest.(check int) "same clause count"
        (Formula.num_clauses x.Gen.Suites.formula)
        (Formula.num_clauses y.Gen.Suites.formula))
    a b

let test_suites_all_unsat () =
  let instances = Gen.Suites.industrial ~scale:0.3 ~seed:4 () in
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (i.Gen.Suites.name ^ " unsat")
        true
        (is_unsat i.Gen.Suites.formula))
    instances

let test_debug_suite () =
  let instances = Gen.Suites.debugging ~scale:0.2 ~seed:5 () in
  Alcotest.(check bool) "non-empty" true (instances <> []);
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (i.Gen.Suites.name ^ " unsat")
        true
        (is_unsat i.Gen.Suites.formula))
    instances

let test_families () =
  let instances = Gen.Suites.industrial ~scale:0.3 ~seed:6 () in
  let families = Gen.Suites.families instances in
  List.iter
    (fun f ->
      Alcotest.(check bool) ("family " ^ f) true
        (List.mem f [ "bmc"; "equiv"; "atpg"; "php"; "rnd3sat" ]))
    families;
  Alcotest.(check int) "five families" 5 (List.length families)

let prop_unroll_sound =
  QCheck.Test.make ~name:"bmc counter unsat at random depths" ~count:8
    QCheck.(int_range 1 8)
    (fun depth -> is_unsat (Gen.Bmc.counter_formula ~width:3 ~limit:6 ~target:7 ~depth))


let test_weighted_debug_suite () =
  let instances = Gen.Suites.weighted_debugging ~scale:0.15 ~seed:8 () in
  Alcotest.(check bool) "non-empty" true (instances <> []);
  List.iter
    (fun (name, family, w) ->
      Alcotest.(check string) "family" "wdebug" family;
      Alcotest.(check bool) (name ^ " has weights") true (Wcnf.num_soft w > 0);
      (* Weighted algorithms agree on the optimum. *)
      let r1 = M.solve M.Wpm1 w in
      let r2 = M.solve M.Pbo_binary w in
      Alcotest.(check bool)
        (name ^ " wpm1/pbo agree")
        true
        (r1.T.outcome = r2.T.outcome))
    instances


(* ---------------- graph coloring ---------------- *)

module Coloring = Gen.Coloring

let test_coloring_encoding_matches_brute () =
  let st = Random.State.make [| 0xC01 |] in
  for _ = 1 to 12 do
    let g = Coloring.random_graph st ~n_vertices:(3 + Random.State.int st 4) ~edge_prob:0.6 in
    let colors = 2 + Random.State.int st 2 in
    let w = Coloring.encode g ~colors in
    let expected = Coloring.min_conflicts_brute g ~colors in
    match (M.solve M.Msu4_v2 w).T.outcome with
    | T.Optimum c -> Alcotest.(check int) "optimum = min conflicts" expected c
    | o -> Alcotest.failf "unexpected %a" T.pp_outcome o
  done

let test_coloring_model_decodes () =
  let st = Random.State.make [| 0xC02 |] in
  let g = Coloring.random_graph st ~n_vertices:6 ~edge_prob:0.5 in
  let colors = 2 in
  let w = Coloring.encode g ~colors in
  let r = M.solve M.Pbo_binary w in
  match (r.T.outcome, r.T.model) with
  | T.Optimum cost, Some m ->
      (* Decode the exactly-one block into a coloring. *)
      let coloring =
        Array.init g.Coloring.n_vertices (fun v ->
            let rec find c =
              if c = colors then Alcotest.fail "no color set"
              else if m.((v * colors) + c) then c
              else find (c + 1)
            in
            find 0)
      in
      Alcotest.(check int) "decoded cost matches"
        cost
        (Coloring.conflicts g ~colors ~coloring)
  | o, _ -> Alcotest.failf "unexpected %a" T.pp_outcome (fst (o, ()))

let test_interval_graph_structure () =
  let st = Random.State.make [| 0xC03 |] in
  let g = Coloring.interval_graph st ~n_intervals:12 ~horizon:20 ~max_len:6 in
  Alcotest.(check int) "vertices" 12 g.Coloring.n_vertices;
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "edge well-formed" true (u < v && v < 12))
    g.Coloring.edges

let test_coloring_guards () =
  let g = Coloring.{ n_vertices = 2; edges = [ (0, 1) ] } in
  Alcotest.check_raises "zero colors"
    (Invalid_argument "Coloring.encode: need at least one color") (fun () ->
      ignore (Coloring.encode g ~colors:0))

let suite =
  [
    Alcotest.test_case "pigeonhole" `Quick test_php;
    Alcotest.test_case "random ksat shape" `Quick test_random_cnf;
    Alcotest.test_case "unsat ksat verified" `Quick test_unsat_ksat;
    Alcotest.test_case "bmc counter unsat" `Quick test_bmc_counter_unsat;
    Alcotest.test_case "bmc counter edge cases" `Quick test_bmc_counter_simulation;
    Alcotest.test_case "bmc lfsr unsat" `Quick test_bmc_lfsr_unsat;
    Alcotest.test_case "bmc parameter guards" `Quick test_bmc_guards;
    Alcotest.test_case "equiv miters unsat" `Quick test_equiv_unsat;
    Alcotest.test_case "atpg redundant faults unsat" `Quick test_atpg_unsat;
    Alcotest.test_case "atpg fault is functionally silent" `Quick test_atpg_equivalence;
    Alcotest.test_case "debug partial optimum 1" `Quick test_debug_partial_optimum_is_one;
    Alcotest.test_case "debug plain CNF unsat" `Quick test_debug_plain_unsat_cnf;
    Alcotest.test_case "suites deterministic" `Quick test_suites_deterministic;
    Alcotest.test_case "suite instances unsat" `Slow test_suites_all_unsat;
    Alcotest.test_case "debugging suite" `Slow test_debug_suite;
    Alcotest.test_case "family labels" `Quick test_families;
    Alcotest.test_case "weighted debugging suite" `Quick test_weighted_debug_suite;
    Alcotest.test_case "coloring optimum vs brute force" `Quick
      test_coloring_encoding_matches_brute;
    Alcotest.test_case "coloring model decodes" `Quick test_coloring_model_decodes;
    Alcotest.test_case "interval graph structure" `Quick test_interval_graph_structure;
    Alcotest.test_case "coloring guards" `Quick test_coloring_guards;
    QCheck_alcotest.to_alcotest prop_unroll_sound;
  ]
