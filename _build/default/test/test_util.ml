(* Shared helpers for the test suites. *)

module Lit = Msu_cnf.Lit
module Formula = Msu_cnf.Formula

let lit d = Lit.of_dimacs d
let clause ds = Array.of_list (List.map lit ds)

let formula_of_clauses n_vars clauses =
  let f = Formula.create () in
  Formula.ensure_vars f n_vars;
  List.iter (fun c -> ignore (Formula.add_clause f (clause c))) clauses;
  f

(* Deterministic random CNF generation. *)

let random_clause st n_vars max_len =
  let len = 1 + Random.State.int st max_len in
  Array.init len (fun _ ->
      let v = Random.State.int st n_vars in
      Lit.make v (Random.State.bool st))

let random_formula st ~n_vars ~n_clauses ~max_len =
  let f = Formula.create () in
  Formula.ensure_vars f n_vars;
  for _ = 1 to n_clauses do
    ignore (Formula.add_clause f (random_clause st n_vars max_len))
  done;
  f

(* Reference satisfiability check by enumeration (small n only). *)

let brute_force_sat ?(assumptions = [||]) f =
  let n = Formula.num_vars f in
  assert (n <= 22);
  let model = Array.make (max n 1) false in
  let ok = ref false in
  let bits_max = (1 lsl n) - 1 in
  let bits = ref 0 in
  while (not !ok) && !bits <= bits_max do
    for v = 0 to n - 1 do
      model.(v) <- !bits land (1 lsl v) <> 0
    done;
    let assumps_ok =
      Array.for_all
        (fun l -> if Lit.sign l then model.(Lit.var l) else not model.(Lit.var l))
        assumptions
    in
    if assumps_ok && Formula.count_satisfied f model = Formula.num_clauses f then ok := true
    else incr bits
  done;
  if !ok then Some (Array.copy model) else None

let solver_of_formula ?(track_proof = true) f =
  let s = Msu_sat.Solver.create ~track_proof () in
  Msu_sat.Solver.ensure_vars s (Formula.num_vars f);
  Formula.iter_clauses (fun i c -> Msu_sat.Solver.add_clause ~id:i s c) f;
  s

(* Pigeonhole principle: n+1 pigeons in n holes, unsatisfiable. *)

let pigeonhole n =
  let f = Formula.create () in
  let var p h = (p * n) + h in
  Formula.ensure_vars f ((n + 1) * n);
  for p = 0 to n do
    ignore
      (Formula.add_clause f (Array.init n (fun h -> Lit.pos (var p h))))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        ignore
          (Formula.add_clause f [| Lit.neg_of (var p1 h); Lit.neg_of (var p2 h) |])
      done
    done
  done;
  f
