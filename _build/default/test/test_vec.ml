module Vec = Msu_cnf.Vec

let test_push_pop () =
  let v = Vec.create ~dummy:0 in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "size" 100 (Vec.size v);
  Alcotest.(check int) "get 42" 42 (Vec.get v 42);
  Alcotest.(check int) "last" 99 (Vec.last v);
  Alcotest.(check int) "pop" 99 (Vec.pop v);
  Alcotest.(check int) "size after pop" 99 (Vec.size v)

let test_bounds () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () -> Vec.set v 3 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      let e = Vec.create ~dummy:0 in
      ignore (Vec.pop e))

let test_shrink_clear () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5 ] in
  Vec.shrink v 2;
  Alcotest.(check (list int)) "shrunk" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  Alcotest.(check bool) "cleared" true (Vec.is_empty v)

let test_swap_remove () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4 ] in
  Vec.swap_remove v 1;
  Alcotest.(check (list int)) "swap removed" [ 1; 4; 3 ] (Vec.to_list v)

let test_filter_in_place () =
  let v = Vec.of_list ~dummy:0 [ 1; 2; 3; 4; 5; 6 ] in
  Vec.filter_in_place (fun x -> x mod 2 = 0) v;
  Alcotest.(check (list int)) "filtered" [ 2; 4; 6 ] (Vec.to_list v)

let test_grow_to () =
  let v = Vec.of_list ~dummy:0 [ 1 ] in
  Vec.grow_to v 4 9;
  Alcotest.(check (list int)) "grown" [ 1; 9; 9; 9 ] (Vec.to_list v)

let test_sort_fold () =
  let v = Vec.of_list ~dummy:0 [ 3; 1; 2 ] in
  Vec.sort compare v;
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Vec.to_list v);
  Alcotest.(check int) "fold sum" 6 (Vec.fold ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 2) v);
  Alcotest.(check bool) "for_all" false (Vec.for_all (fun x -> x > 1) v)

let test_copy_independent () =
  let v = Vec.of_list ~dummy:0 [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.push w 3;
  Alcotest.(check int) "original unchanged" 2 (Vec.size v);
  Alcotest.(check int) "copy grown" 3 (Vec.size w)

let prop_push_to_list =
  QCheck.Test.make ~name:"vec push/to_list round trip" ~count:200
    QCheck.(list int)
    (fun l ->
      let v = Vec.create ~dummy:0 in
      List.iter (Vec.push v) l;
      Vec.to_list v = l)

let prop_of_array_to_array =
  QCheck.Test.make ~name:"vec of_array/to_array round trip" ~count:200
    QCheck.(array int)
    (fun a ->
      let v = Vec.of_array ~dummy:0 a in
      Vec.to_array v = a)

let suite =
  [
    Alcotest.test_case "push/pop" `Quick test_push_pop;
    Alcotest.test_case "bounds checking" `Quick test_bounds;
    Alcotest.test_case "shrink/clear" `Quick test_shrink_clear;
    Alcotest.test_case "swap_remove" `Quick test_swap_remove;
    Alcotest.test_case "filter_in_place" `Quick test_filter_in_place;
    Alcotest.test_case "grow_to" `Quick test_grow_to;
    Alcotest.test_case "sort/fold/exists" `Quick test_sort_fold;
    Alcotest.test_case "copy independence" `Quick test_copy_independent;
    QCheck_alcotest.to_alcotest prop_push_to_list;
    QCheck_alcotest.to_alcotest prop_of_array_to_array;
  ]
