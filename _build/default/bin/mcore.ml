(* mcore: unsatisfiability analysis for DIMACS CNF files — cores,
   minimal unsatisfiable subsets, disjoint-core bounds, and checked
   DRUP refutation proofs. *)

module Solver = Msu_sat.Solver
module Mus = Msu_sat.Mus
module Drup = Msu_sat.Drup
module Formula = Msu_cnf.Formula
open Cmdliner

let load file =
  try Ok (Msu_cnf.Dimacs.parse_cnf_file file) with
  | Msu_cnf.Dimacs.Parse_error (line, msg) ->
      Error (Printf.sprintf "%s:%d: %s" file line msg)
  | Sys_error msg -> Error msg

let with_formula file k =
  match load file with
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      2
  | Ok f -> k f

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"DIMACS CNF file.")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "t"; "timeout" ] ~docv:"SECONDS" ~doc:"Wall-clock budget.")

let deadline_of = Option.map (fun t -> Unix.gettimeofday () +. t)

let print_clause_set f ids =
  Printf.printf "%d clauses:\n" (List.length ids);
  List.iter
    (fun i ->
      Printf.printf "  %3d:" i;
      Array.iter
        (fun l -> Printf.printf " %d" (Msu_cnf.Lit.to_dimacs l))
        (Formula.clause f i);
      print_newline ())
    ids

let core_cmd =
  let run file timeout =
    with_formula file (fun f ->
        let s = Solver.create () in
        Solver.ensure_vars s (Formula.num_vars f);
        Formula.iter_clauses (fun i c -> Solver.add_clause ~id:i s c) f;
        match Solver.solve ?deadline:(deadline_of timeout) s with
        | Solver.Sat ->
            print_endline "s SATISFIABLE";
            0
        | Solver.Unknown ->
            print_endline "s UNKNOWN";
            1
        | Solver.Unsat ->
            print_endline "s UNSATISFIABLE";
            print_clause_set f (Solver.unsat_core s);
            0)
  in
  Cmd.v
    (Cmd.info "core" ~doc:"Extract an unsatisfiable core (not necessarily minimal).")
    Term.(const run $ file_arg $ timeout_arg)

let mus_cmd =
  let run file timeout =
    with_formula file (fun f ->
        match Mus.extract ?deadline:(deadline_of timeout) f with
        | None ->
            print_endline "s SATISFIABLE (or budget exceeded)";
            1
        | Some mus ->
            print_endline "s UNSATISFIABLE (minimal subset below)";
            print_clause_set f (List.sort compare mus);
            0)
  in
  Cmd.v
    (Cmd.info "mus" ~doc:"Extract a minimal unsatisfiable subset (deletion-based).")
    Term.(const run $ file_arg $ timeout_arg)

let disjoint_cmd =
  let run file timeout =
    with_formula file (fun f ->
        let w = Msu_cnf.Wcnf.of_formula f in
        match Msu_maxsat.Disjoint_cores.find ?deadline:(deadline_of timeout) w with
        | None ->
            print_endline "s UNSATISFIABLE (hard clauses)";
            1
        | Some t ->
            Printf.printf "%d disjoint cores -> MaxSAT cost >= %d (%s)\n"
              t.Msu_maxsat.Disjoint_cores.lower_bound
              t.Msu_maxsat.Disjoint_cores.lower_bound
              (if t.Msu_maxsat.Disjoint_cores.exhausted then "exhausted"
               else "budget stop");
            List.iteri
              (fun k core ->
                Printf.printf "core %d: %s\n" k
                  (String.concat " " (List.map string_of_int (List.sort compare core))))
              t.Msu_maxsat.Disjoint_cores.cores;
            0)
  in
  Cmd.v
    (Cmd.info "disjoint"
       ~doc:"Enumerate disjoint cores (Proposition 1's MaxSAT lower bound).")
    Term.(const run $ file_arg $ timeout_arg)

let prove_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the DRUP proof here.")
  in
  let run file timeout out =
    with_formula file (fun f ->
        let log = Drup.create () in
        let s = Solver.create ~track_proof:false () in
        Solver.set_drup s log;
        Solver.ensure_vars s (Formula.num_vars f);
        Formula.iter_clauses (fun i c -> Solver.add_clause ~id:i s c) f;
        match Solver.solve ?deadline:(deadline_of timeout) s with
        | Solver.Sat ->
            print_endline "s SATISFIABLE";
            0
        | Solver.Unknown ->
            print_endline "s UNKNOWN";
            1
        | Solver.Unsat ->
            print_endline "s UNSATISFIABLE";
            Printf.printf "c proof: %d events\n" (Drup.num_events log);
            let verified = Drup.check ~require_empty:true f log in
            Printf.printf "c proof %s by the independent checker\n"
              (if verified then "VERIFIED" else "REJECTED");
            (match out with
            | None -> ()
            | Some path ->
                let oc = open_out path in
                let ppf = Format.formatter_of_out_channel oc in
                Drup.pp ppf log;
                Format.pp_print_flush ppf ();
                close_out oc;
                Printf.printf "c proof written to %s\n" path);
            if verified then 0 else 3)
  in
  Cmd.v
    (Cmd.info "prove" ~doc:"Refute, log a DRUP proof, and self-check it.")
    Term.(const run $ file_arg $ timeout_arg $ out_arg)

let simplify_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the simplified CNF here.")
  in
  let run file out =
    with_formula file (fun f ->
        match Msu_sat.Simplify.simplify f with
        | None ->
            print_endline "s UNSATISFIABLE (refuted during preprocessing)";
            0
        | Some r ->
            Printf.printf
              "c %d -> %d clauses (%d removed, %d literals strengthened, %d vars \
               eliminated)\n"
              (Formula.num_clauses f)
              (Formula.num_clauses r.Msu_sat.Simplify.formula)
              r.Msu_sat.Simplify.removed_clauses r.Msu_sat.Simplify.strengthened
              r.Msu_sat.Simplify.eliminated_vars;
            (match out with
            | None -> Msu_cnf.Dimacs.print_cnf Format.std_formatter r.Msu_sat.Simplify.formula
            | Some path -> Msu_cnf.Dimacs.write_cnf_file path r.Msu_sat.Simplify.formula);
            0)
  in
  Cmd.v
    (Cmd.info "simplify"
       ~doc:"SatELite-style preprocessing: subsumption, strengthening, elimination.")
    Term.(const run $ file_arg $ out_arg)

let mcs_cmd =
  let limit =
    Arg.(value & opt int 16 & info [ "l"; "limit" ] ~docv:"N" ~doc:"Max MCSes to list.")
  in
  let run file timeout limit =
    with_formula file (fun f ->
        let w = Msu_cnf.Wcnf.of_formula f in
        match
          Msu_maxsat.Mcs.enumerate ?deadline:(deadline_of timeout) ~limit w
        with
        | None ->
            print_endline "s UNSATISFIABLE (hard clauses)";
            1
        | Some { Msu_maxsat.Mcs.mcses; complete } ->
            Printf.printf "%d minimal correction set(s)%s\n" (List.length mcses)
              (if complete then "" else " (truncated)");
            List.iteri
              (fun k set ->
                Printf.printf "mcs %d (size %d): %s\n" k (List.length set)
                  (String.concat " " (List.map string_of_int set)))
              mcses;
            0)
  in
  Cmd.v
    (Cmd.info "mcs"
       ~doc:"Enumerate minimal correction sets (MUS duals), smallest first.")
    Term.(const run $ file_arg $ timeout_arg $ limit)

let cmd =
  let doc = "unsatisfiability analysis: cores, MUSes, disjoint cores, DRUP proofs" in
  Cmd.group (Cmd.info "mcore" ~version:"1.0" ~doc)
    [ core_cmd; mus_cmd; disjoint_cmd; prove_cmd; simplify_cmd; mcs_cmd ]

let () = exit (Cmd.eval' cmd)
