(* mgen: generate the benchmark families as DIMACS files. *)

module Formula = Msu_cnf.Formula
module Dimacs = Msu_cnf.Dimacs
open Cmdliner

let emit out formula =
  match out with
  | None -> Dimacs.print_cnf Format.std_formatter formula
  | Some path -> Dimacs.write_cnf_file path formula

let emit_wcnf out w =
  match out with
  | None -> Dimacs.print_wcnf Format.std_formatter w
  | Some path -> Dimacs.write_wcnf_file path w

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default stdout).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let state seed = Random.State.make [| seed |]

(* --- individual families --- *)

let php_cmd =
  let holes = Arg.(value & opt int 5 & info [ "n"; "holes" ] ~docv:"N" ~doc:"Holes.") in
  let run n out =
    emit out (Msu_gen.Php.formula n);
    0
  in
  Cmd.v
    (Cmd.info "php" ~doc:"Pigeonhole formula PHP(n+1, n).")
    Term.(const run $ holes $ out_arg)

let rnd3sat_cmd =
  let vars = Arg.(value & opt int 30 & info [ "n"; "vars" ] ~doc:"Variables.") in
  let ratio = Arg.(value & opt float 7.0 & info [ "r"; "ratio" ] ~doc:"Clause ratio.") in
  let run n ratio seed out =
    emit out (Msu_gen.Random_cnf.unsat_ksat (state seed) ~n_vars:n ~ratio ~k:3);
    0
  in
  Cmd.v
    (Cmd.info "rnd3sat" ~doc:"Unsatisfiable random 3-SAT (solver-verified).")
    Term.(const run $ vars $ ratio $ seed_arg $ out_arg)

let bmc_counter_cmd =
  let width = Arg.(value & opt int 5 & info [ "w"; "width" ] ~doc:"Counter width.") in
  let depth = Arg.(value & opt int 15 & info [ "d"; "depth" ] ~doc:"Unrolling depth.") in
  let run width depth out =
    let limit = (1 lsl width) - 2 and target = (1 lsl width) - 1 in
    emit out (Msu_gen.Bmc.counter_formula ~width ~limit ~target ~depth);
    0
  in
  Cmd.v
    (Cmd.info "bmc-counter" ~doc:"BMC of a counter with an unreachable target (unsat).")
    Term.(const run $ width $ depth $ out_arg)

let bmc_lfsr_cmd =
  let width = Arg.(value & opt int 6 & info [ "w"; "width" ] ~doc:"LFSR width.") in
  let depth = Arg.(value & opt int 10 & info [ "d"; "depth" ] ~doc:"Unrolling depth.") in
  let run width depth out =
    emit out (Msu_gen.Bmc.lfsr_formula ~width ~taps:[ 1 ] ~depth);
    0
  in
  Cmd.v
    (Cmd.info "bmc-lfsr" ~doc:"BMC of an LFSR asked to reach the zero state (unsat).")
    Term.(const run $ width $ depth $ out_arg)

let equiv_cmd =
  let gates = Arg.(value & opt int 120 & info [ "g"; "gates" ] ~doc:"Gates.") in
  let inputs = Arg.(value & opt int 8 & info [ "i"; "inputs" ] ~doc:"Inputs.") in
  let outputs = Arg.(value & opt int 4 & info [ "p"; "outputs" ] ~doc:"Outputs.") in
  let run gates inputs outputs seed out =
    emit out
      (Msu_gen.Equiv.instance (state seed) ~n_inputs:inputs ~n_gates:gates
         ~n_outputs:outputs);
    0
  in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Equivalence-checking miter of a netlist vs its resynthesis.")
    Term.(const run $ gates $ inputs $ outputs $ seed_arg $ out_arg)

let atpg_cmd =
  let gates = Arg.(value & opt int 100 & info [ "g"; "gates" ] ~doc:"Gates.") in
  let inputs = Arg.(value & opt int 8 & info [ "i"; "inputs" ] ~doc:"Inputs.") in
  let outputs = Arg.(value & opt int 3 & info [ "p"; "outputs" ] ~doc:"Outputs.") in
  let faults = Arg.(value & opt int 2 & info [ "f"; "faults" ] ~doc:"Planted faults.") in
  let run gates inputs outputs faults seed out =
    emit out
      (Msu_gen.Atpg.instance (state seed) ~n_inputs:inputs ~n_gates:gates
         ~n_outputs:outputs ~n_faults:faults);
    0
  in
  Cmd.v
    (Cmd.info "atpg" ~doc:"Untestable-fault ATPG miter (unsat).")
    Term.(const run $ gates $ inputs $ outputs $ faults $ seed_arg $ out_arg)

let debug_cmd =
  let gates = Arg.(value & opt int 40 & info [ "g"; "gates" ] ~doc:"Gates.") in
  let inputs = Arg.(value & opt int 6 & info [ "i"; "inputs" ] ~doc:"Inputs.") in
  let outputs = Arg.(value & opt int 3 & info [ "p"; "outputs" ] ~doc:"Outputs.") in
  let vectors = Arg.(value & opt int 4 & info [ "v"; "vectors" ] ~doc:"Test vectors.") in
  let plain =
    Arg.(value & flag & info [ "plain" ] ~doc:"Plain MaxSAT encoding (all clauses soft).")
  in
  let run gates inputs outputs vectors plain seed out =
    let encoding = if plain then `Plain else `Partial in
    let inst =
      Msu_gen.Debug.instance (state seed) ~n_inputs:inputs ~n_gates:gates
        ~n_outputs:outputs ~n_vectors:vectors ~encoding
    in
    Printf.eprintf "c injected error at gate %d\n" inst.Msu_gen.Debug.buggy_gate;
    emit_wcnf out inst.Msu_gen.Debug.wcnf;
    0
  in
  Cmd.v
    (Cmd.info "debug" ~doc:"Design-debugging MaxSAT instance (WCNF).")
    Term.(const run $ gates $ inputs $ outputs $ vectors $ plain $ seed_arg $ out_arg)

let coloring_cmd =
  let vertices = Arg.(value & opt int 20 & info [ "n"; "vertices" ] ~doc:"Vertices.") in
  let colors = Arg.(value & opt int 3 & info [ "k"; "colors" ] ~doc:"Colors.") in
  let prob = Arg.(value & opt float 0.3 & info [ "p"; "prob" ] ~doc:"Edge probability.") in
  let interval =
    Arg.(value & flag & info [ "interval" ] ~doc:"Interval (register-allocation) graph.")
  in
  let run vertices colors prob interval seed out =
    let st = state seed in
    let g =
      if interval then
        Msu_gen.Coloring.interval_graph st ~n_intervals:vertices
          ~horizon:(2 * vertices) ~max_len:(max 2 (vertices / 3))
      else Msu_gen.Coloring.random_graph st ~n_vertices:vertices ~edge_prob:prob
    in
    emit_wcnf out (Msu_gen.Coloring.encode g ~colors);
    0
  in
  Cmd.v
    (Cmd.info "coloring" ~doc:"Graph-coloring MaxSAT instance (WCNF, hard exactly-one).")
    Term.(const run $ vertices $ colors $ prob $ interval $ seed_arg $ out_arg)

let suite_cmd =
  let dir =
    Arg.(
      required
      & opt (some string) None
      & info [ "d"; "dir" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  let scale = Arg.(value & opt float 1.0 & info [ "scale" ] ~doc:"Size/count scale.") in
  let which =
    Arg.(
      value
      & opt (enum [ ("industrial", `Industrial); ("debugging", `Debugging) ]) `Industrial
      & info [ "suite" ] ~doc:"Which suite: industrial or debugging.")
  in
  let run dir scale which seed =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let instances =
      match which with
      | `Industrial -> Msu_gen.Suites.industrial ~scale ~seed ()
      | `Debugging -> Msu_gen.Suites.debugging ~scale ~seed ()
    in
    List.iter
      (fun i ->
        let path = Filename.concat dir (i.Msu_gen.Suites.name ^ ".cnf") in
        Dimacs.write_cnf_file path i.Msu_gen.Suites.formula)
      instances;
    Printf.printf "wrote %d instances to %s\n" (List.length instances) dir;
    0
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Write a whole benchmark suite to a directory.")
    Term.(const run $ dir $ scale $ which $ seed_arg)

let cmd =
  let doc = "generate EDA-style MaxSAT benchmark instances" in
  Cmd.group (Cmd.info "mgen" ~version:"1.0" ~doc)
    [
      php_cmd;
      rnd3sat_cmd;
      coloring_cmd;
      bmc_counter_cmd;
      bmc_lfsr_cmd;
      equiv_cmd;
      atpg_cmd;
      debug_cmd;
      suite_cmd;
    ]

let () = exit (Cmd.eval' cmd)
