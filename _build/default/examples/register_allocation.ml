(* Register allocation as MaxSAT: color the interference graph of live
   ranges with k registers, minimizing the number of conflicting pairs
   (each conflict is a spill/copy the compiler must insert).

   This is the "scheduling/routing" application family the paper's
   introduction cites for MaxSAT, on the EDA-adjacent compiler side.

     dune exec examples/register_allocation.exe *)

module Coloring = Msu_gen.Coloring
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  let st = Random.State.make [| 31337 |] in
  let n_ranges = 18 in
  let g = Coloring.interval_graph st ~n_intervals:n_ranges ~horizon:34 ~max_len:10 in
  Printf.printf "Interference graph: %d live ranges, %d conflicts possible\n" n_ranges
    (List.length g.Coloring.edges);

  List.iter
    (fun registers ->
      let w = Coloring.encode g ~colors:registers in
      (* Binary search handles the larger optima of tight register
         budgets better than pure core counting. *)
      let r = M.solve M.Pbo_binary w in
      match (r.T.outcome, r.T.model) with
      | T.Optimum cost, Some m ->
          let coloring =
            Array.init n_ranges (fun v ->
                let rec find c = if m.((v * registers) + c) then c else find (c + 1) in
                find 0)
          in
          assert (Coloring.conflicts g ~colors:registers ~coloring = cost);
          Printf.printf
            "  %2d registers: %2d conflicting pairs remain  (%.3fs, %d cores)\n"
            registers cost r.T.elapsed r.T.stats.T.cores
      | o, _ -> Format.printf "  %2d registers: %a@." registers T.pp_outcome o)
    [ 2; 3; 4; 5 ];

  print_newline ();
  print_endline
    "Cost 0 marks the chromatic number of the interference graph: the\n\
     fewest registers that avoid all spills."
