(* Bounded model checking end to end: an AIGER design, unrolled to CNF,
   refuted by the CDCL solver with a DRUP proof that an independent
   checker validates — the full verification loop of the EDA substrate
   this reproduction is built on.

   The design is a 4-bit LFSR whose "bad" output asks for the all-zero
   state; seeded non-zero with an invertible feedback, that state is
   unreachable, so every unrolling depth is UNSAT.

     dune exec examples/model_checking.exe *)

module Aiger = Msu_circuit.Aiger
module Circuit = Msu_circuit.Circuit
module Unroll = Msu_circuit.Unroll
module Solver = Msu_sat.Solver
module Drup = Msu_sat.Drup
module Formula = Msu_cnf.Formula
module Sink = Msu_cnf.Sink

(* A 4-bit Fibonacci LFSR in AIGER: latches l1..l4, feedback
   l1 xor l2, bad = all latches zero.  Built programmatically via the
   netlist exporter to keep the example readable. *)
let lfsr_spec = Msu_gen.Bmc.lfsr_spec ~width:4 ~taps:[ 1 ]

let () =
  (* 1. Unroll at increasing depths; every depth must be UNSAT. *)
  List.iter
    (fun depth ->
      let c, bad = Unroll.unroll lfsr_spec ~k:depth in
      let f = Formula.create () in
      ignore (Circuit.assert_node c (Sink.of_formula f) bad);
      let log = Drup.create () in
      let s = Solver.create ~track_proof:false () in
      Solver.set_drup s log;
      Formula.iter_clauses (fun _ cl -> Solver.add_clause s cl) f;
      let t0 = Unix.gettimeofday () in
      let result = Solver.solve s in
      let dt = Unix.gettimeofday () -. t0 in
      match result with
      | Solver.Unsat ->
          let verified = Drup.check ~require_empty:true f log in
          Printf.printf
            "depth %2d: UNSAT in %.3fs  (%4d vars, %5d clauses; proof %d events, %s)\n"
            depth dt (Formula.num_vars f) (Formula.num_clauses f)
            (Drup.num_events log)
            (if verified then "VERIFIED" else "REJECTED");
          assert verified
      | Solver.Sat -> Printf.printf "depth %2d: SAT — property violated!\n" depth
      | Solver.Unknown -> Printf.printf "depth %2d: budget exceeded\n" depth)
    [ 1; 2; 4; 6; 8; 10 ];

  (* 2. Round-trip the property circuit through AIGER. *)
  print_newline ();
  let st = Random.State.make [| 7 |] in
  let nl = Msu_circuit.Netlist.random st ~n_inputs:4 ~n_gates:12 ~n_outputs:2 in
  let aig = Aiger.of_netlist nl in
  Printf.printf "AIGER export of a 12-gate netlist: %d ands, %d inputs\n"
    (Array.length aig.Aiger.ands)
    (Array.length aig.Aiger.inputs);
  let text = Format.asprintf "%a" Aiger.print aig in
  let reparsed = Aiger.parse text in
  Printf.printf "Round trip through the aag text format: %s\n"
    (if reparsed = aig then "identical" else "DIFFERS");
  print_newline ();
  print_endline "First lines of the aag file:";
  String.split_on_char '\n' text
  |> List.filteri (fun i _ -> i < 5)
  |> List.iter (fun l -> Printf.printf "  %s\n" l)
