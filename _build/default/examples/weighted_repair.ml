(* Weighted design repair: when gates have different repair costs,
   the cheapest explanation of the failing vectors is a *weighted*
   partial MaxSAT optimum — the extension of the paper's algorithm
   family that WPM1/WBO later industrialized.

   A buggy circuit is encoded as in design_debugging.ml, but each
   gate's "do not suspect me" soft clause carries a cost.  The weighted
   algorithms then find the cheapest consistent repair set, which may
   prefer two cheap gates over one expensive one.

     dune exec examples/weighted_repair.exe *)

module Debug = Msu_gen.Debug
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  let st = Random.State.make [| 4242 |] in
  let n_gates = 40 in
  (* Cost profile: gates near the outputs (higher indices) are pricey to
     touch, early-stage gates are cheap. *)
  let cost g = 1 + (5 * g / n_gates) in
  let inst =
    Debug.instance ~gate_weight:cost st ~n_inputs:6 ~n_gates ~n_outputs:3
      ~n_vectors:5 ~encoding:`Partial
  in
  Printf.printf "Buggy gate: %d (repair cost %d)\n" inst.Debug.buggy_gate
    (cost inst.Debug.buggy_gate);
  Printf.printf "Instance: %d vars, %d hard, %d weighted soft clauses\n\n"
    (Msu_cnf.Wcnf.num_vars inst.Debug.wcnf)
    (Msu_cnf.Wcnf.num_hard inst.Debug.wcnf)
    (Msu_cnf.Wcnf.num_soft inst.Debug.wcnf);

  List.iter
    (fun alg ->
      let r = M.solve alg inst.Debug.wcnf in
      match (r.T.outcome, r.T.model) with
      | T.Optimum cost_total, Some model ->
          let suspects =
            Array.to_list inst.Debug.relax_vars
            |> List.mapi (fun g v -> (g, v))
            |> List.filter (fun (_, v) -> v < Array.length model && model.(v))
            |> List.map fst
          in
          Printf.printf "  %-11s: cheapest repair costs %d; gates %s  (%.3fs)\n"
            (M.algorithm_to_string alg) cost_total
            (String.concat ", "
               (List.map (fun g -> Printf.sprintf "%d(w%d)" g (cost g)) suspects))
            r.T.elapsed
      | o, _ -> Format.printf "  %-11s: %a@." (M.algorithm_to_string alg) T.pp_outcome o)
    [ M.Wpm1; M.Pbo_linear; M.Pbo_binary; M.Branch_bound ];

  print_newline ();
  (* Contrast with the unweighted reading of the same instance. *)
  let unweighted = Msu_cnf.Wcnf.create () in
  Msu_cnf.Wcnf.ensure_vars unweighted (Msu_cnf.Wcnf.num_vars inst.Debug.wcnf);
  Msu_cnf.Wcnf.iter_hard (fun _ c -> Msu_cnf.Wcnf.add_hard unweighted c) inst.Debug.wcnf;
  Msu_cnf.Wcnf.iter_soft
    (fun _ c _ -> ignore (Msu_cnf.Wcnf.add_soft unweighted c))
    inst.Debug.wcnf;
  let r = M.solve M.Msu4_v2 unweighted in
  (match r.T.outcome with
  | T.Optimum k ->
      Printf.printf "Unweighted reading (every repair costs 1): %d gate(s) suffice.\n" k
  | o -> Format.printf "Unweighted reading: %a@." T.pp_outcome o)
