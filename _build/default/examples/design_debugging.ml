(* Design debugging with MaxSAT — the application (Safarpour et al.,
   FMCAD'07) that motivated the msu4 paper.

   We take a random gate-level netlist, inject a single gate error,
   simulate the *correct* design to obtain test vectors, and encode the
   question "what is the smallest set of gates whose misbehaviour
   explains all vectors?" as partial MaxSAT.  msu4 answers "one gate"
   and its model points at the culprit.

     dune exec examples/design_debugging.exe *)

module Netlist = Msu_circuit.Netlist
module Debug = Msu_gen.Debug
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  let st = Random.State.make [| 2008 |] in
  let n_inputs = 6 and n_gates = 30 and n_outputs = 3 and n_vectors = 5 in
  let inst =
    Debug.instance st ~n_inputs ~n_gates ~n_outputs ~n_vectors ~encoding:`Partial
  in
  Printf.printf "Circuit: %d inputs, %d gates, %d outputs; %d test vectors\n"
    n_inputs n_gates n_outputs n_vectors;
  Printf.printf "Injected error: gate %d\n\n" inst.Debug.buggy_gate;
  Printf.printf "Debugging instance: %d vars, %d hard clauses, %d soft clauses\n"
    (Msu_cnf.Wcnf.num_vars inst.Debug.wcnf)
    (Msu_cnf.Wcnf.num_hard inst.Debug.wcnf)
    (Msu_cnf.Wcnf.num_soft inst.Debug.wcnf);

  List.iter
    (fun alg ->
      let r = M.solve alg inst.Debug.wcnf in
      match (r.T.outcome, r.T.model) with
      | T.Optimum cost, Some model ->
          let suspects =
            Array.to_list inst.Debug.relax_vars
            |> List.mapi (fun gate v -> (gate, v))
            |> List.filter (fun (_, v) -> v < Array.length model && model.(v))
            |> List.map fst
          in
          Printf.printf "  %-11s: %d gate(s) suffice; suspect gate(s): %s%s  (%.4fs)\n"
            (M.algorithm_to_string alg) cost
            (String.concat ", " (List.map string_of_int suspects))
            (if List.mem inst.Debug.buggy_gate suspects then "  <- includes the real bug"
             else "")
            r.T.elapsed
      | o, _ ->
          Format.printf "  %-11s: %a@." (M.algorithm_to_string alg) T.pp_outcome o)
    [ M.Msu4_v2; M.Msu4_v1; M.Msu3; M.Pbo_linear ];

  print_newline ();
  print_endline
    "Note: several single-gate corrections can explain the same vectors;\n\
     adding vectors narrows the suspect list toward the injected gate."
