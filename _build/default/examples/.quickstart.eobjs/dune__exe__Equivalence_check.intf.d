examples/equivalence_check.mli:
