examples/quickstart.mli:
