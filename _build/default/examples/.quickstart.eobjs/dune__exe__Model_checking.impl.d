examples/model_checking.ml: Array Format List Msu_circuit Msu_cnf Msu_gen Msu_sat Printf Random String Unix
