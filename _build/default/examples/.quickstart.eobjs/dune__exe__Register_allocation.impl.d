examples/register_allocation.ml: Array Format List Msu_gen Msu_maxsat Printf Random
