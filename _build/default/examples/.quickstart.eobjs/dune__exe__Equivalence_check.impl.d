examples/equivalence_check.ml: Format List Msu_circuit Msu_cnf Msu_gen Msu_maxsat Msu_sat Printf Random Unix
