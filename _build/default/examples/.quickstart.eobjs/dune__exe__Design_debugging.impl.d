examples/design_debugging.ml: Array Format List Msu_circuit Msu_cnf Msu_gen Msu_maxsat Printf Random String
