examples/bounds_anatomy.ml: Array Format List Msu_card Msu_cnf Msu_gen Msu_maxsat Printf
