examples/weighted_repair.mli:
