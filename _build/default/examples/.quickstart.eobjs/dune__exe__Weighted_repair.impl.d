examples/weighted_repair.ml: Array Format List Msu_cnf Msu_gen Msu_maxsat Printf Random String
