examples/register_allocation.mli:
