examples/design_debugging.mli:
