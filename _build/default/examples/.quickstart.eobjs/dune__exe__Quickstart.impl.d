examples/quickstart.ml: Array Format List Msu_cnf Msu_maxsat Printf
