(* Equivalence checking and near-miss analysis.

   A netlist is resynthesized through the hash-consing circuit builder
   and a miter is formed.  The miter is unsatisfiable (the designs are
   equivalent); MaxSAT on the miter CNF tells us how close to
   satisfiable it is — and the unsat core machinery shows which tiny
   part of the CNF already forces the contradiction.

     dune exec examples/equivalence_check.exe *)

module Netlist = Msu_circuit.Netlist
module Formula = Msu_cnf.Formula
module Solver = Msu_sat.Solver
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  let st = Random.State.make [| 77 |] in
  let nl = Netlist.random st ~n_inputs:8 ~n_gates:120 ~n_outputs:4 in
  Printf.printf "Netlist: %d inputs, %d gates, %d outputs\n" 8 120 4;

  (* 1. Plain SAT equivalence check with core extraction. *)
  let miter = Msu_gen.Equiv.miter_formula nl in
  Printf.printf "Miter CNF: %d vars, %d clauses\n" (Formula.num_vars miter)
    (Formula.num_clauses miter);
  let s = Solver.create () in
  Formula.iter_clauses (fun i c -> Solver.add_clause ~id:i s c) miter;
  (match Solver.solve s with
  | Solver.Unsat ->
      let core = Solver.unsat_core s in
      Printf.printf "Equivalent (miter UNSAT); core uses %d of %d clauses\n"
        (List.length core) (Formula.num_clauses miter)
  | Solver.Sat -> print_endline "NOT equivalent (bug in resynthesis?)"
  | Solver.Unknown -> print_endline "undecided");

  (* 2. A mutated netlist is inequivalent: the miter is satisfiable and
     the model is a distinguishing input vector. *)
  let mutant, gate = Netlist.mutate_gate st nl in
  let s2 = Solver.create ~track_proof:false () in
  Netlist.miter nl mutant (Solver.sink s2);
  (match Solver.solve s2 with
  | Solver.Sat -> Printf.printf "Mutating gate %d breaks equivalence (miter SAT)\n" gate
  | Solver.Unsat -> Printf.printf "Mutation at gate %d is functionally silent\n" gate
  | Solver.Unknown -> print_endline "undecided");

  (* 3. MaxSAT on the (unsat) miter: how many clauses must go? *)
  print_newline ();
  print_endline "MaxSAT on the equivalence miter (all clauses soft):";
  let w = Msu_cnf.Wcnf.of_formula miter in
  List.iter
    (fun alg ->
      let t0 = Unix.gettimeofday () in
      let config = { T.default_config with T.deadline = t0 +. 10.0 } in
      let r = M.solve ~config alg w in
      match r.T.outcome with
      | T.Optimum c ->
          Printf.printf "  %-11s: drop %d clause(s) to make it satisfiable  (%.3fs)\n"
            (M.algorithm_to_string alg) c r.T.elapsed
      | o -> Format.printf "  %-11s: %a@." (M.algorithm_to_string alg) T.pp_outcome o)
    [ M.Msu4_v2; M.Msu4_v1; M.Pbo_linear; M.Branch_bound ]
