lib/card/card.ml: Array Msu_bdd Msu_cnf
