lib/card/gte.mli: Msu_cnf
