lib/card/card.mli: Msu_cnf
