lib/card/gte.ml: Array Int List Map Msu_cnf
