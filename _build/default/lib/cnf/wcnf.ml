type t = {
  mutable num_vars : int;
  hard : Lit.t array Vec.t;
  soft : Lit.t array Vec.t;
  weights : int Vec.t;
}

let create () =
  {
    num_vars = 0;
    hard = Vec.create ~dummy:[||];
    soft = Vec.create ~dummy:[||];
    weights = Vec.create ~dummy:0;
  }

let num_vars f = f.num_vars
let ensure_vars f n = if n > f.num_vars then f.num_vars <- n

let fresh_var f =
  let v = f.num_vars in
  f.num_vars <- v + 1;
  v

let note_vars f c = Array.iter (fun l -> ensure_vars f (Lit.var l + 1)) c

let add_hard f c =
  note_vars f c;
  Vec.push f.hard c

let add_soft f ?(weight = 1) c =
  if weight <= 0 then invalid_arg "Wcnf.add_soft: non-positive weight";
  note_vars f c;
  Vec.push f.soft c;
  Vec.push f.weights weight;
  Vec.size f.soft - 1

let num_hard f = Vec.size f.hard
let num_soft f = Vec.size f.soft
let hard f i = Vec.get f.hard i
let soft f i = Vec.get f.soft i
let weight f i = Vec.get f.weights i
let total_soft_weight f = Vec.fold ( + ) 0 f.weights
let iter_hard g f = Vec.iteri g f.hard
let iter_soft g f = Vec.iteri (fun i c -> g i c (weight f i)) f.soft

let of_formula cnf =
  let f = create () in
  ensure_vars f (Formula.num_vars cnf);
  Formula.iter_clauses (fun _ c -> ignore (add_soft f c)) cnf;
  f

let to_formula f =
  let cnf = Formula.create () in
  Formula.ensure_vars cnf f.num_vars;
  iter_hard (fun _ c -> ignore (Formula.add_clause cnf c)) f;
  iter_soft (fun _ c _ -> ignore (Formula.add_clause cnf c)) f;
  cnf

let is_plain f = num_hard f = 0 && Vec.for_all (fun w -> w = 1) f.weights

let cost_of_model f model =
  if not (Vec.for_all (fun c -> Formula.clause_satisfied c model) f.hard) then None
  else begin
    let cost = ref 0 in
    iter_soft (fun _ c w -> if not (Formula.clause_satisfied c model) then cost := !cost + w) f;
    Some !cost
  end

let brute_force_min_cost ?(limit_vars = 24) f =
  let n = num_vars f in
  if n > limit_vars then invalid_arg "Wcnf.brute_force_min_cost: too many variables";
  let model = Array.make (max n 1) false in
  let best = ref None in
  for bits = 0 to (1 lsl n) - 1 do
    for v = 0 to n - 1 do
      model.(v) <- bits land (1 lsl v) <> 0
    done;
    match cost_of_model f model with
    | None -> ()
    | Some c -> (
        match !best with
        | Some b when b <= c -> ()
        | _ -> best := Some c)
  done;
  !best

let copy f =
  {
    num_vars = f.num_vars;
    hard = Vec.copy f.hard;
    soft = Vec.copy f.soft;
    weights = Vec.copy f.weights;
  }

let pp ppf f =
  let top = total_soft_weight f + 1 in
  Format.fprintf ppf "@[<v>p wcnf %d %d %d" (num_vars f) (num_hard f + num_soft f) top;
  let pp_clause w c =
    Format.fprintf ppf "@,%d " w;
    Array.iter (fun l -> Format.fprintf ppf "%a " Lit.pp l) c;
    Format.fprintf ppf "0"
  in
  iter_hard (fun _ c -> pp_clause top c) f;
  iter_soft (fun _ c w -> pp_clause w c) f;
  Format.fprintf ppf "@]"
