(** Growable arrays.

    A thin, allocation-conscious dynamic array used throughout the solver
    stack (trails, watcher lists, clause databases).  Elements beyond
    [size] keep the [dummy] value supplied at creation so that the
    backing array never holds stale pointers the GC would retain. *)

type 'a t

val create : dummy:'a -> 'a t
(** [create ~dummy] is an empty vector.  [dummy] fills unused slots. *)

val make : int -> dummy:'a -> 'a t
(** [make n ~dummy] is a vector of size [n] filled with [dummy]. *)

val of_list : dummy:'a -> 'a list -> 'a t

val of_array : dummy:'a -> 'a array -> 'a t
(** The array is copied. *)

val size : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element.  Bounds-checked against [size]. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit
(** Amortized O(1) append. *)

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument if empty. *)

val last : 'a t -> 'a

val clear : 'a t -> unit
(** Resets size to 0 and overwrites slots with [dummy]. *)

val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to the first [n] elements. *)

val grow_to : 'a t -> int -> 'a -> unit
(** [grow_to v n x] extends [v] with copies of [x] until [size v >= n]. *)

val swap_remove : 'a t -> int -> unit
(** [swap_remove v i] removes element [i] in O(1) by moving the last
    element into its place.  Order is not preserved. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val for_all : ('a -> bool) -> 'a t -> bool
val filter_in_place : ('a -> bool) -> 'a t -> unit
val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val copy : 'a t -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
(** In-place sort of the live prefix. *)

val unsafe_get : 'a t -> int -> 'a
val unsafe_set : 'a t -> int -> 'a -> unit
