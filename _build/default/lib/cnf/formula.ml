type t = {
  mutable num_vars : int;
  clauses : Lit.t array Vec.t;
}

let create () = { num_vars = 0; clauses = Vec.create ~dummy:[||] }
let num_vars f = f.num_vars
let num_clauses f = Vec.size f.clauses
let ensure_vars f n = if n > f.num_vars then f.num_vars <- n

let fresh_var f =
  let v = f.num_vars in
  f.num_vars <- v + 1;
  v

let add_clause f c =
  Array.iter (fun l -> ensure_vars f (Lit.var l + 1)) c;
  Vec.push f.clauses c;
  Vec.size f.clauses - 1

let add_clause_l f ls = add_clause f (Array.of_list ls)
let clause f i = Vec.get f.clauses i
let iter_clauses g f = Vec.iteri g f.clauses
let fold_clauses g acc f = Vec.fold (fun (acc, i) c -> (g acc i c, i + 1)) (acc, 0) f.clauses |> fst

let clauses f = Vec.to_array f.clauses

let copy f = { num_vars = f.num_vars; clauses = Vec.copy f.clauses }

let lit_true l model =
  let v = Lit.var l in
  let value = v < Array.length model && model.(v) in
  if Lit.sign l then value else not value

let clause_satisfied c model = Array.exists (fun l -> lit_true l model) c

let count_satisfied f model =
  Vec.fold (fun n c -> if clause_satisfied c model then n + 1 else n) 0 f.clauses

let max_sat_brute_force ?(limit_vars = 24) f =
  let n = num_vars f in
  if n > limit_vars then invalid_arg "Formula.max_sat_brute_force: too many variables";
  let model = Array.make (max n 1) false in
  let best = ref 0 in
  let total = 1 lsl n in
  for bits = 0 to total - 1 do
    for v = 0 to n - 1 do
      model.(v) <- bits land (1 lsl v) <> 0
    done;
    let sat = count_satisfied f model in
    if sat > !best then best := sat
  done;
  !best

let pp ppf f =
  Format.fprintf ppf "@[<v>p cnf %d %d" (num_vars f) (num_clauses f);
  Vec.iter
    (fun c ->
      Format.fprintf ppf "@,";
      Array.iter (fun l -> Format.fprintf ppf "%a " Lit.pp l) c;
      Format.fprintf ppf "0")
    f.clauses;
  Format.fprintf ppf "@]"
