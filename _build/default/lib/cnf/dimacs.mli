(** DIMACS CNF and WCNF readers and writers.

    Supports the classic formats used by the SAT competitions and MaxSAT
    evaluations:
    - [p cnf <vars> <clauses>] followed by zero-terminated clauses;
    - [p wcnf <vars> <clauses> <top>] where a clause whose weight equals
      [top] is hard, any other weight is soft;
    - [p wcnf <vars> <clauses>] (old style: all clauses soft, the leading
      number of each line is the weight);
    - comment lines starting with [c].

    Parsers are tolerant of arbitrary whitespace and of clauses spanning
    several lines.  Errors raise {!Parse_error} with a line number. *)

exception Parse_error of int * string
(** [Parse_error (line, message)]. *)

val parse_cnf : string -> Formula.t
(** Parse a CNF formula from the contents of a DIMACS file. *)

val parse_cnf_file : string -> Formula.t
val parse_wcnf : string -> Wcnf.t
(** Parse a WCNF formula (plain CNF input is accepted too and yields an
    all-soft, unit-weight instance). *)

val parse_wcnf_file : string -> Wcnf.t
val print_cnf : Format.formatter -> Formula.t -> unit
val print_wcnf : Format.formatter -> Wcnf.t -> unit
val write_cnf_file : string -> Formula.t -> unit
val write_wcnf_file : string -> Wcnf.t -> unit
