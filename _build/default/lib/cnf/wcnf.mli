(** Weighted partial MaxSAT formulas.

    A WCNF instance has {e hard} clauses, which every solution must
    satisfy, and {e soft} clauses, each with a positive integer weight.
    The objective is to maximize the total weight of satisfied soft
    clauses (equivalently, minimize the weight of falsified ones).

    Plain MaxSAT is the special case of no hard clauses and all weights
    equal to 1 ({!of_formula}). *)

type t

val create : unit -> t
val num_vars : t -> int
val ensure_vars : t -> int -> unit
val fresh_var : t -> Lit.var

val add_hard : t -> Lit.t array -> unit
val add_soft : t -> ?weight:int -> Lit.t array -> int
(** Adds a soft clause (default weight 1) and returns its soft index.
    @raise Invalid_argument on a non-positive weight. *)

val num_hard : t -> int
val num_soft : t -> int
val hard : t -> int -> Lit.t array
val soft : t -> int -> Lit.t array
val weight : t -> int -> int
(** Weight of the [i]-th soft clause. *)

val total_soft_weight : t -> int
val iter_hard : (int -> Lit.t array -> unit) -> t -> unit
val iter_soft : (int -> Lit.t array -> int -> unit) -> t -> unit
(** [iter_soft f w] calls [f index clause weight]. *)

val of_formula : Formula.t -> t
(** Every clause becomes soft with weight 1. *)

val to_formula : t -> Formula.t
(** Forgets hardness and weights: all clauses in one plain CNF, hard
    clauses first.  Mostly for debugging and brute-force checks. *)

val is_plain : t -> bool
(** No hard clauses and all soft weights are 1. *)

val cost_of_model : t -> bool array -> int option
(** Total weight of falsified soft clauses, or [None] when the model
    violates a hard clause. *)

val brute_force_min_cost : ?limit_vars:int -> t -> int option
(** Exact minimum falsified soft weight by enumeration; [None] if the
    hard clauses are unsatisfiable.  For cross-checks on small
    instances. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
