(** CNF formulas.

    A formula is a bag of clauses over variables [0 .. num_vars - 1].
    Clauses are arrays of literals; the empty clause is permitted (it
    makes the formula trivially unsatisfiable).  The clause order is the
    insertion order and clause indices are stable, which the MaxSAT
    algorithms rely on to name clauses in unsatisfiable cores. *)

type t

val create : unit -> t
(** An empty formula with no variables. *)

val num_vars : t -> int
(** One more than the largest variable mentioned (or set by
    {!ensure_vars}). *)

val num_clauses : t -> int

val ensure_vars : t -> int -> unit
(** [ensure_vars f n] declares that variables [0 .. n-1] exist even if
    unmentioned. *)

val fresh_var : t -> Lit.var
(** Allocates a new variable. *)

val add_clause : t -> Lit.t array -> int
(** Appends a clause (the array is not copied; do not mutate it
    afterwards) and returns its index. *)

val add_clause_l : t -> Lit.t list -> int

val clause : t -> int -> Lit.t array
(** [clause f i] is the [i]-th clause.  Do not mutate the result. *)

val iter_clauses : (int -> Lit.t array -> unit) -> t -> unit
val fold_clauses : ('a -> int -> Lit.t array -> 'a) -> 'a -> t -> 'a
val clauses : t -> Lit.t array array
(** A fresh array of the clauses, in index order. *)

val copy : t -> t

val clause_satisfied : Lit.t array -> bool array -> bool
(** [clause_satisfied c model] — [model.(v)] is the value of variable
    [v]; variables beyond the model are false. *)

val count_satisfied : t -> bool array -> int
(** Number of clauses of [f] satisfied by the assignment. *)

val max_sat_brute_force : ?limit_vars:int -> t -> int
(** Exact MaxSAT optimum by enumeration of all assignments.  Intended for
    cross-checking on small formulas.
    @param limit_vars refuse (raise [Invalid_argument]) beyond this many
    variables (default 24). *)

val pp : Format.formatter -> t -> unit
