exception Parse_error of int * string

(* A hand-rolled tokenizer: DIMACS files can be large, so avoid building
   intermediate string lists.  Tracks line numbers for error reports. *)
type tokenizer = {
  text : string;
  mutable pos : int;
  mutable line : int;
}

let tokenizer text = { text; pos = 0; line = 1 }
let fail tk msg = raise (Parse_error (tk.line, msg))

let rec skip_space tk =
  if tk.pos < String.length tk.text then
    match tk.text.[tk.pos] with
    | ' ' | '\t' | '\r' ->
        tk.pos <- tk.pos + 1;
        skip_space tk
    | '\n' ->
        tk.pos <- tk.pos + 1;
        tk.line <- tk.line + 1;
        skip_space tk
    | 'c' when at_line_start tk ->
        skip_line tk;
        skip_space tk
    | _ -> ()

and at_line_start tk = tk.pos = 0 || tk.text.[tk.pos - 1] = '\n'

and skip_line tk =
  while tk.pos < String.length tk.text && tk.text.[tk.pos] <> '\n' do
    tk.pos <- tk.pos + 1
  done

let eof tk =
  skip_space tk;
  tk.pos >= String.length tk.text

let next_token tk =
  skip_space tk;
  if tk.pos >= String.length tk.text then fail tk "unexpected end of input";
  let start = tk.pos in
  while
    tk.pos < String.length tk.text
    &&
    match tk.text.[tk.pos] with ' ' | '\t' | '\r' | '\n' -> false | _ -> true
  do
    tk.pos <- tk.pos + 1
  done;
  String.sub tk.text start (tk.pos - start)

let next_int tk =
  let s = next_token tk in
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail tk (Printf.sprintf "expected an integer, got %S" s)

type header = Cnf of int * int | Wcnf_old of int * int | Wcnf_top of int * int * int

let parse_header tk =
  skip_space tk;
  let tok = next_token tk in
  if tok <> "p" then fail tk (Printf.sprintf "expected 'p' header, got %S" tok);
  let kind = next_token tk in
  let vars = next_int tk in
  let clauses = next_int tk in
  match kind with
  | "cnf" -> Cnf (vars, clauses)
  | "wcnf" ->
      (* Old-style wcnf has no top; detect by peeking: if the rest of the
         header line has another integer, it is the top weight. *)
      let save_pos = tk.pos and save_line = tk.line in
      let rest_of_line =
        let e = ref tk.pos in
        while !e < String.length tk.text && tk.text.[!e] <> '\n' do
          incr e
        done;
        String.trim (String.sub tk.text tk.pos (!e - tk.pos))
      in
      if rest_of_line = "" then Wcnf_old (vars, clauses)
      else begin
        tk.pos <- save_pos;
        tk.line <- save_line;
        let top = next_int tk in
        Wcnf_top (vars, clauses, top)
      end
  | k -> fail tk (Printf.sprintf "unknown problem kind %S" k)

let read_clause tk =
  let lits = ref [] in
  let rec loop () =
    let n = next_int tk in
    if n <> 0 then begin
      lits := Lit.of_dimacs n :: !lits;
      loop ()
    end
  in
  loop ();
  Array.of_list (List.rev !lits)

let parse_cnf text =
  let tk = tokenizer text in
  match parse_header tk with
  | Cnf (vars, _clauses) ->
      let f = Formula.create () in
      Formula.ensure_vars f vars;
      while not (eof tk) do
        ignore (Formula.add_clause f (read_clause tk))
      done;
      f
  | Wcnf_old _ | Wcnf_top _ -> fail tk "expected a cnf file, got wcnf"

let parse_wcnf text =
  let tk = tokenizer text in
  match parse_header tk with
  | Cnf (vars, _) ->
      let f = Wcnf.create () in
      Wcnf.ensure_vars f vars;
      while not (eof tk) do
        ignore (Wcnf.add_soft f (read_clause tk))
      done;
      f
  | Wcnf_old (vars, _) ->
      let f = Wcnf.create () in
      Wcnf.ensure_vars f vars;
      while not (eof tk) do
        let w = next_int tk in
        if w <= 0 then fail tk "non-positive soft weight";
        ignore (Wcnf.add_soft f ~weight:w (read_clause tk))
      done;
      f
  | Wcnf_top (vars, _, top) ->
      let f = Wcnf.create () in
      Wcnf.ensure_vars f vars;
      while not (eof tk) do
        let w = next_int tk in
        let c = read_clause tk in
        if w = top then Wcnf.add_hard f c
        else if w > 0 then ignore (Wcnf.add_soft f ~weight:w c)
        else fail tk "non-positive soft weight"
      done;
      f

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_cnf_file path = parse_cnf (read_file path)
let parse_wcnf_file path = parse_wcnf (read_file path)
let print_cnf ppf f = Format.fprintf ppf "%a@." Formula.pp f
let print_wcnf ppf f = Format.fprintf ppf "%a@." Wcnf.pp f

let with_out path k =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      k ppf;
      Format.pp_print_flush ppf ())

let write_cnf_file path f = with_out path (fun ppf -> print_cnf ppf f)
let write_wcnf_file path f = with_out path (fun ppf -> print_wcnf ppf f)
