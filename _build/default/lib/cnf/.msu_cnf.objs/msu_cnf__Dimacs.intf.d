lib/cnf/dimacs.mli: Format Formula Wcnf
