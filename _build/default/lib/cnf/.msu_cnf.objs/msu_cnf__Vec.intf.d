lib/cnf/vec.mli:
