lib/cnf/sink.mli: Formula Lit Wcnf
