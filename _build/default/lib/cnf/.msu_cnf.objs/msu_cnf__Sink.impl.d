lib/cnf/sink.ml: Formula Lit Wcnf
