lib/cnf/wcnf.mli: Format Formula Lit
