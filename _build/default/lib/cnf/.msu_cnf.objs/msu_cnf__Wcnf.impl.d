lib/cnf/wcnf.ml: Array Format Formula Lit Vec
