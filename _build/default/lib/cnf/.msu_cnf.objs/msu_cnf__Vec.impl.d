lib/cnf/vec.ml: Array List
