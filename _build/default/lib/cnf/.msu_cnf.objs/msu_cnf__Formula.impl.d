lib/cnf/formula.ml: Array Format Lit Vec
