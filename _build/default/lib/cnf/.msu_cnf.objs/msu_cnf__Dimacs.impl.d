lib/cnf/dimacs.ml: Array Format Formula Fun List Lit Printf String Wcnf
