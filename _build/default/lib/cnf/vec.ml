type 'a t = { mutable data : 'a array; mutable size : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; size = 0; dummy }

let make n ~dummy =
  let cap = max n 1 in
  { data = Array.make cap dummy; size = n; dummy }

let size v = v.size
let is_empty v = v.size = 0

let get v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.size then invalid_arg "Vec.set";
  v.data.(i) <- x

let unsafe_get v i = Array.unsafe_get v.data i
let unsafe_set v i x = Array.unsafe_set v.data i x

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let data' = Array.make cap' v.dummy in
    Array.blit v.data 0 data' 0 v.size;
    v.data <- data'
  end

let push v x =
  ensure_capacity v (v.size + 1);
  v.data.(v.size) <- x;
  v.size <- v.size + 1

let pop v =
  if v.size = 0 then invalid_arg "Vec.pop";
  v.size <- v.size - 1;
  let x = v.data.(v.size) in
  v.data.(v.size) <- v.dummy;
  x

let last v =
  if v.size = 0 then invalid_arg "Vec.last";
  v.data.(v.size - 1)

let shrink v n =
  if n < 0 || n > v.size then invalid_arg "Vec.shrink";
  for i = n to v.size - 1 do
    v.data.(i) <- v.dummy
  done;
  v.size <- n

let clear v = shrink v 0

let grow_to v n x =
  ensure_capacity v n;
  while v.size < n do
    v.data.(v.size) <- x;
    v.size <- v.size + 1
  done

let swap_remove v i =
  if i < 0 || i >= v.size then invalid_arg "Vec.swap_remove";
  v.data.(i) <- v.data.(v.size - 1);
  v.data.(v.size - 1) <- v.dummy;
  v.size <- v.size - 1

let iter f v =
  for i = 0 to v.size - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.size - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.size - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.size && (p v.data.(i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let filter_in_place p v =
  let j = ref 0 in
  for i = 0 to v.size - 1 do
    if p v.data.(i) then begin
      v.data.(!j) <- v.data.(i);
      incr j
    end
  done;
  shrink v !j

let to_list v =
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (v.data.(i) :: acc) in
  loop (v.size - 1) []

let to_array v = Array.sub v.data 0 v.size

let of_list ~dummy l =
  let v = create ~dummy in
  List.iter (push v) l;
  v

let of_array ~dummy a =
  let v = make (Array.length a) ~dummy in
  Array.blit a 0 v.data 0 (Array.length a);
  v

let copy v = { data = Array.copy v.data; size = v.size; dummy = v.dummy }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.size
