(** Literals and variables.

    Variables are non-negative integers [0, 1, 2, ...].  A literal packs a
    variable and a sign into a single non-negative integer:
    [2 * var + (if negated then 1 else 0)].  This gives branch-free
    negation ([lxor 1]) and lets literals index arrays directly, which the
    watched-literal scheme of {!Msu_sat.Solver} relies on.

    The DIMACS convention (1-based, sign by arithmetic sign) is supported
    via {!of_dimacs} / {!to_dimacs}. *)

type t = private int
(** A literal.  The representation is exposed as [private int] so that
    solver-internal code can use literals as array indices without
    boxing. *)

type var = int
(** A variable: a non-negative integer. *)

val make : var -> bool -> t
(** [make v sign] is the literal over variable [v]; [sign = true] gives
    the positive literal [v], [sign = false] the negation.
    @raise Invalid_argument on a negative variable. *)

val pos : var -> t
(** [pos v] is the positive literal of [v]. *)

val neg_of : var -> t
(** [neg_of v] is the negative literal of [v]. *)

val var : t -> var
(** The underlying variable. *)

val sign : t -> bool
(** [sign l] is [true] when [l] is a positive literal. *)

val neg : t -> t
(** Logical negation. *)

val to_int : t -> int
(** The packed representation, usable as an array index in [0, 2n). *)

val of_int_unsafe : int -> t
(** Inverse of {!to_int}; no validation. *)

val of_dimacs : int -> t
(** [of_dimacs d] converts a non-zero DIMACS literal ([1] is variable 0
    positive, [-3] is variable 2 negative).
    @raise Invalid_argument on [0]. *)

val to_dimacs : t -> int

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints in DIMACS form, e.g. [-3]. *)
