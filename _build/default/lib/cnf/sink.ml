type t = {
  fresh_var : unit -> Lit.var;
  emit : Lit.t array -> unit;
}

let of_formula f =
  {
    fresh_var = (fun () -> Formula.fresh_var f);
    emit = (fun c -> ignore (Formula.add_clause f c));
  }

let of_wcnf_hard w =
  { fresh_var = (fun () -> Wcnf.fresh_var w); emit = (fun c -> Wcnf.add_hard w c) }

let counting () =
  let clauses = ref 0 in
  let vars = ref 0 in
  let sink =
    {
      fresh_var =
        (fun () ->
          incr vars;
          !vars - 1);
      emit = (fun _ -> incr clauses);
    }
  in
  (sink, fun () -> !clauses)
