(** Clause sinks.

    A sink is the streaming interface between clause {e producers}
    (cardinality encoders, Tseitin transformers) and clause {e consumers}
    (formulas, WCNF hard-clause sets, SAT solvers): producers allocate
    auxiliary variables with [fresh_var] and hand finished clauses to
    [emit], so no intermediate formula is materialized. *)

type t = {
  fresh_var : unit -> Lit.var;  (** allocate an auxiliary variable *)
  emit : Lit.t array -> unit;  (** receive one clause *)
}

val of_formula : Formula.t -> t
(** Clauses are appended to the formula; fresh variables extend it. *)

val of_wcnf_hard : Wcnf.t -> t
(** Clauses become hard clauses of the WCNF instance. *)

val counting : unit -> t * (unit -> int)
(** A sink that discards clauses but counts them (for size measurements);
    returns the sink and a function reading the count.  Fresh variables
    are allocated from a private counter. *)
