lib/sat/drup.mli: Format Msu_cnf
