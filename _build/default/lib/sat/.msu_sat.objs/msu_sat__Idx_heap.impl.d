lib/sat/idx_heap.ml: Array List Msu_cnf
