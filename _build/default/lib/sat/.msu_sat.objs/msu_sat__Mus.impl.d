lib/sat/mus.ml: Fun List Msu_cnf Solver
