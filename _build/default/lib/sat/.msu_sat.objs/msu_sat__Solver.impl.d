lib/sat/solver.ml: Array Drup Float Format Hashtbl Idx_heap List Msu_cnf Unix
