lib/sat/simplify.mli: Msu_cnf
