lib/sat/solver.mli: Drup Format Msu_cnf
