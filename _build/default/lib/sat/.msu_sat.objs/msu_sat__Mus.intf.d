lib/sat/mus.mli: Msu_cnf
