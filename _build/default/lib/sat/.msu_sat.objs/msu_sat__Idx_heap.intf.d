lib/sat/idx_heap.mli:
