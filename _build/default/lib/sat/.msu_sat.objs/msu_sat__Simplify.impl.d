lib/sat/simplify.ml: Array Int64 List Msu_cnf
