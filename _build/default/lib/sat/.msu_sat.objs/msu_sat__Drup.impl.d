lib/sat/drup.ml: Array Format Hashtbl List Msu_cnf
