(** Minimal unsatisfiable subset (MUS) extraction.

    The msu4 paper builds on the literature relating maximally
    satisfiable and minimally unsatisfiable subformulas (Kullmann;
    de la Banda, Stuckey & Wazny; Liffiton & Sakallah — its refs
    [15, 16, 7, 19]).  This module provides the standard
    {e deletion-based} extractor: starting from any unsatisfiable
    subset (e.g. a solver core), try dropping one clause at a time; a
    clause whose removal keeps the subset unsatisfiable is deleted
    permanently, and each refutation's own core prunes the candidate
    set further.

    The result is {e minimal} (every clause is necessary), not minimum
    cardinality. *)

val minimize :
  ?deadline:float -> Msu_cnf.Formula.t -> int list -> int list option
(** [minimize f subset] shrinks an unsatisfiable set of clause indices
    of [f] to a minimal one.  Returns [None] if the deadline interrupts
    the process (partial progress is discarded) or if [subset] is not
    actually unsatisfiable. *)

val extract : ?deadline:float -> Msu_cnf.Formula.t -> int list option
(** Refute the whole formula, then {!minimize} the returned core.
    [None] when the formula is satisfiable or the budget runs out. *)

val is_unsat_subset : Msu_cnf.Formula.t -> int list -> bool
(** Check a subset by a fresh solver run (no budget). *)
