module Formula = Msu_cnf.Formula

let solve_subset ?deadline f subset =
  let s = Solver.create () in
  Solver.ensure_vars s (Formula.num_vars f);
  List.iter (fun i -> Solver.add_clause ~id:i s (Formula.clause f i)) subset;
  let result = Solver.solve ?deadline s in
  (result, s)

let is_unsat_subset f subset = fst (solve_subset f subset) = Solver.Unsat

let minimize ?deadline f subset =
  match solve_subset ?deadline f subset with
  | Solver.Sat, _ | Solver.Unknown, _ -> None
  | Solver.Unsat, s ->
      (* Start from the solver's own core, usually much smaller. *)
      let rec shrink kept candidates =
        match candidates with
        | [] -> Some kept
        | c :: rest -> (
            match solve_subset ?deadline f (kept @ rest) with
            | Solver.Unknown, _ -> None
            | Solver.Unsat, s' ->
                (* [c] is redundant; the new core prunes further. *)
                let core = Solver.unsat_core s' in
                let still x = List.mem x core in
                shrink (List.filter still kept) (List.filter still rest)
            | Solver.Sat, _ ->
                (* [c] is necessary. *)
                shrink (c :: kept) rest)
      in
      shrink [] (Solver.unsat_core s)

let extract ?deadline f =
  let all = List.init (Formula.num_clauses f) Fun.id in
  minimize ?deadline f all
