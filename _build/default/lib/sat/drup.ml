module Lit = Msu_cnf.Lit
module Formula = Msu_cnf.Formula

type event = Add of Lit.t array | Delete of Lit.t array
type log = { mutable rev_events : event list; mutable count : int }

let create () = { rev_events = []; count = 0 }

let push log e =
  log.rev_events <- e :: log.rev_events;
  log.count <- log.count + 1

let log_add log c = push log (Add (Array.copy c))
let log_delete log c = push log (Delete (Array.copy c))
let events log = List.rev log.rev_events
let num_events log = log.count

(* ------------------------------------------------------------------ *)
(* Reference RUP checker.                                               *)
(* ------------------------------------------------------------------ *)

(* Clause database for the replay: clauses are stored as sorted literal
   arrays so that deletions can find their target. *)
type db = {
  mutable clauses : Lit.t array array;
  mutable live : bool array;
  mutable size : int;
  index : (Lit.t array, int list ref) Hashtbl.t; (* sorted lits -> ids *)
}

let db_create () =
  { clauses = Array.make 64 [||]; live = Array.make 64 false; size = 0;
    index = Hashtbl.create 256 }

let normalize c =
  let c = Array.copy c in
  Array.sort Lit.compare c;
  c

let db_add db c =
  let c = normalize c in
  if db.size = Array.length db.clauses then begin
    let clauses = Array.make (2 * db.size) [||] in
    let live = Array.make (2 * db.size) false in
    Array.blit db.clauses 0 clauses 0 db.size;
    Array.blit db.live 0 live 0 db.size;
    db.clauses <- clauses;
    db.live <- live
  end;
  let id = db.size in
  db.clauses.(id) <- c;
  db.live.(id) <- true;
  db.size <- db.size + 1;
  let bucket =
    match Hashtbl.find_opt db.index c with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add db.index c b;
        b
  in
  bucket := id :: !bucket

let db_delete db c =
  let c = normalize c in
  match Hashtbl.find_opt db.index c with
  | None -> false
  | Some b -> (
      match List.find_opt (fun id -> db.live.(id)) !b with
      | None -> false
      | Some id ->
          db.live.(id) <- false;
          true)

(* Unit propagation by repeated scanning — a deliberately simple
   checker, independent of the solver's machinery. *)
let propagates_to_conflict db assignment =
  (* assignment: Hashtbl var -> bool *)
  let value l =
    match Hashtbl.find_opt assignment (Lit.var l) with
    | None -> None
    | Some b -> Some (if Lit.sign l then b else not b)
  in
  let conflict = ref false in
  let changed = ref true in
  while !changed && not !conflict do
    changed := false;
    for id = 0 to db.size - 1 do
      if db.live.(id) && not !conflict then begin
        let c = db.clauses.(id) in
        let satisfied = ref false in
        let unassigned = ref [] in
        Array.iter
          (fun l ->
            match value l with
            | Some true -> satisfied := true
            | Some false -> ()
            | None -> unassigned := l :: !unassigned)
          c;
        if not !satisfied then begin
          match !unassigned with
          | [] -> conflict := true
          | [ l ] ->
              Hashtbl.replace assignment (Lit.var l) (Lit.sign l);
              changed := true
          | _ -> ()
        end
      end
    done
  done;
  !conflict

let rup db c =
  let assignment = Hashtbl.create 64 in
  let consistent = ref true in
  Array.iter
    (fun l ->
      (* Assert the negation of the clause. *)
      let v = Lit.var l and b = not (Lit.sign l) in
      match Hashtbl.find_opt assignment v with
      | Some b' when b' <> b -> consistent := false (* tautology: trivially RUP *)
      | _ -> Hashtbl.replace assignment v b)
    c;
  (not !consistent) || propagates_to_conflict db assignment

let check ?(require_empty = false) f log =
  let db = db_create () in
  Formula.iter_clauses (fun _ c -> db_add db c) f;
  let ok = ref true in
  let empty_derived = ref false in
  List.iter
    (fun e ->
      if !ok then
        match e with
        | Add c ->
            if rup db c then begin
              db_add db c;
              if Array.length c = 0 then empty_derived := true
            end
            else ok := false
        | Delete c -> ignore (db_delete db c))
    (events log);
  !ok && ((not require_empty) || !empty_derived)

let pp ppf log =
  List.iter
    (fun e ->
      match e with
      | Add c ->
          Array.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
          Format.fprintf ppf "0@."
      | Delete c ->
          Format.fprintf ppf "d ";
          Array.iter (fun l -> Format.fprintf ppf "%d " (Lit.to_dimacs l)) c;
          Format.fprintf ppf "0@.")
    (events log)
