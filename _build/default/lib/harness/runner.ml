module Maxsat = Msu_maxsat.Maxsat
module Types = Msu_maxsat.Types

type outcome = Solved of int | Aborted | Unsat_hard

type run = {
  instance : string;
  family : string;
  algorithm : Maxsat.algorithm;
  outcome : outcome;
  time : float;
}

let run_one ~timeout algorithm (instance, family, wcnf) =
  let t0 = Unix.gettimeofday () in
  let config = { Types.default_config with deadline = t0 +. timeout } in
  let result = Maxsat.solve ~config algorithm wcnf in
  let time = Float.min (Unix.gettimeofday () -. t0) timeout in
  let outcome =
    match result.Types.outcome with
    | Types.Optimum c -> Solved c
    | Types.Bounds _ -> Aborted
    | Types.Hard_unsat -> Unsat_hard
  in
  { instance; family; algorithm; outcome; time = (if outcome = Aborted then timeout else time) }

let run_suite ?(progress = fun _ -> ()) ~timeout ~algorithms instances =
  List.concat_map
    (fun inst ->
      List.map
        (fun algorithm ->
          let r = run_one ~timeout algorithm inst in
          progress r;
          r)
        algorithms)
    instances

let aborted_counts algorithms runs =
  List.map
    (fun a ->
      let n =
        List.length
          (List.filter (fun r -> r.algorithm = a && r.outcome = Aborted) runs)
      in
      (a, n))
    algorithms

let consistency_errors runs =
  let optima : (string, int * Maxsat.algorithm) Hashtbl.t = Hashtbl.create 64 in
  let errors = ref [] in
  List.iter
    (fun r ->
      match r.outcome with
      | Solved c -> (
          match Hashtbl.find_opt optima r.instance with
          | None -> Hashtbl.add optima r.instance (c, r.algorithm)
          | Some (c', a') ->
              if c <> c' then
                errors :=
                  Printf.sprintf "%s: %s found %d but %s found %d" r.instance
                    (Maxsat.algorithm_to_string r.algorithm)
                    c
                    (Maxsat.algorithm_to_string a')
                    c'
                  :: !errors)
      | Aborted | Unsat_hard -> ())
    runs;
  List.rev !errors

let time_of ~timeout r = match r.outcome with Aborted -> timeout | _ -> r.time

let scatter ~x ~y ~timeout runs =
  let find a name =
    List.find_opt (fun r -> r.algorithm = a && r.instance = name) runs
  in
  let names =
    List.sort_uniq compare (List.map (fun r -> r.instance) runs)
  in
  List.filter_map
    (fun name ->
      match (find x name, find y name) with
      | Some rx, Some ry -> Some (name, time_of ~timeout rx, time_of ~timeout ry)
      | _ -> None)
    names

(* One header row of algorithm names and one row of aborted counts,
   mirroring the layout of the paper's Tables 1 and 2. *)
let pp_aborted_table ~total ppf counts =
  let cells =
    ("Total", string_of_int total)
    :: List.map
         (fun (a, n) -> (Maxsat.algorithm_to_string a, string_of_int n))
         counts
  in
  let width (h, v) = max (String.length h) (String.length v) in
  List.iter (fun c -> Format.fprintf ppf "%-*s  " (width c) (fst c)) cells;
  Format.fprintf ppf "@.";
  List.iter (fun c -> Format.fprintf ppf "%-*s  " (width c) (snd c)) cells;
  Format.fprintf ppf "@."

let pp_scatter_csv ppf points =
  Format.fprintf ppf "instance,x_seconds,y_seconds@.";
  List.iter
    (fun (name, tx, ty) -> Format.fprintf ppf "%s,%.6f,%.6f@." name tx ty)
    points

let pp_runs_csv ppf runs =
  Format.fprintf ppf "instance,family,algorithm,outcome,cost,seconds@.";
  List.iter
    (fun r ->
      let outcome, cost =
        match r.outcome with
        | Solved c -> ("solved", string_of_int c)
        | Aborted -> ("aborted", "")
        | Unsat_hard -> ("hard-unsat", "")
      in
      Format.fprintf ppf "%s,%s,%s,%s,%s,%.6f@." r.instance r.family
        (Maxsat.algorithm_to_string r.algorithm)
        outcome cost r.time)
    runs
