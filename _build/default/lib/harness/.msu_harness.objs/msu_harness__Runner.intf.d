lib/harness/runner.mli: Format Msu_cnf Msu_maxsat
