lib/harness/runner.ml: Float Format Hashtbl List Msu_maxsat Printf String Unix
