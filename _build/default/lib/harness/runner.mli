(** Experiment runner: the msu4 paper's evaluation protocol.

    Each (instance, algorithm) pair runs with a wall-clock budget; runs
    that exceed it are {e aborted}, the unit Tables 1 and 2 of the paper
    count.  Scatter plots (Figures 1-3) pair per-instance runtimes of
    two algorithms, with aborted runs pinned at the timeout value, as in
    the paper's plots. *)

type outcome =
  | Solved of int  (** optimum cost *)
  | Aborted  (** budget exhausted *)
  | Unsat_hard  (** hard clauses unsatisfiable (not expected here) *)

type run = {
  instance : string;
  family : string;
  algorithm : Msu_maxsat.Maxsat.algorithm;
  outcome : outcome;
  time : float;  (** wall seconds; capped at the budget for aborts *)
}

val run_one :
  timeout:float ->
  Msu_maxsat.Maxsat.algorithm ->
  string * string * Msu_cnf.Wcnf.t ->
  run
(** [run_one ~timeout alg (name, family, wcnf)]. *)

val run_suite :
  ?progress:(run -> unit) ->
  timeout:float ->
  algorithms:Msu_maxsat.Maxsat.algorithm list ->
  (string * string * Msu_cnf.Wcnf.t) list ->
  run list
(** Every algorithm on every instance, instance-major order. *)

val aborted_counts :
  Msu_maxsat.Maxsat.algorithm list -> run list -> (Msu_maxsat.Maxsat.algorithm * int) list

val consistency_errors : run list -> string list
(** Instances on which two algorithms solved to different optima — must
    be empty; a non-empty result indicates a solver bug. *)

val scatter :
  x:Msu_maxsat.Maxsat.algorithm ->
  y:Msu_maxsat.Maxsat.algorithm ->
  timeout:float ->
  run list ->
  (string * float * float) list
(** Per-instance [(name, time_x, time_y)]; aborted runs appear at the
    timeout value. *)

val pp_aborted_table :
  total:int ->
  Format.formatter ->
  (Msu_maxsat.Maxsat.algorithm * int) list ->
  unit
(** Renders in the layout of the paper's Tables 1/2. *)

val pp_scatter_csv : Format.formatter -> (string * float * float) list -> unit
val pp_runs_csv : Format.formatter -> run list -> unit
