type node = Zero | One | N of { id : int; v : int; lo : node; hi : node }

type manager = {
  unique : (int * int * int, node) Hashtbl.t; (* (var, lo id, hi id) *)
  mutable next_id : int;
}

let manager () = { unique = Hashtbl.create 1024; next_id = 2 }
let zero = Zero
let one = One
let node_id = function Zero -> 0 | One -> 1 | N { id; _ } -> id
let is_terminal = function Zero | One -> true | N _ -> false

let mk m v lo hi =
  if lo == hi then lo
  else begin
    let key = (v, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = N { id = m.next_id; v; lo; hi } in
        m.next_id <- m.next_id + 1;
        Hashtbl.add m.unique key n;
        n
  end

let var m v =
  if v < 0 then invalid_arg "Bdd.var: negative variable";
  mk m v Zero One

let top_var = function
  | Zero | One -> max_int
  | N { v; _ } -> v

let branches nd v =
  match nd with
  | N { v = v'; lo; hi; _ } when v' = v -> (lo, hi)
  | _ -> (nd, nd)

let rec ite_memo m memo f g h =
  match f with
  | One -> g
  | Zero -> h
  | _ ->
      if g == h then g
      else begin
        let key = (node_id f, node_id g, node_id h) in
        match Hashtbl.find_opt memo key with
        | Some r -> r
        | None ->
            let v = min (top_var f) (min (top_var g) (top_var h)) in
            let f0, f1 = branches f v in
            let g0, g1 = branches g v in
            let h0, h1 = branches h v in
            let lo = ite_memo m memo f0 g0 h0 in
            let hi = ite_memo m memo f1 g1 h1 in
            let r = mk m v lo hi in
            Hashtbl.add memo key r;
            r
      end

let ite m f g h = ite_memo m (Hashtbl.create 64) f g h
let not_ m f = ite m f Zero One
let and_ m f g = ite m f g Zero
let or_ m f g = ite m f One g
let xor m f g = ite m f (not_ m g) g

(* Cardinality BDDs, built bottom-up with memoization on (index, count).
   [go i c] is the BDD over variables i..n-1 that is true iff the final
   count (c plus the trues among the remaining variables) stays in
   range. *)

let counting m ~n ~accept =
  let memo = Hashtbl.create 256 in
  let rec go i c =
    (* Prune: the reachable final counts from (i, c) are [c, c + n - i]. *)
    if i = n then if accept c then One else Zero
    else begin
      match Hashtbl.find_opt memo (i, c) with
      | Some r -> r
      | None ->
          let lo = go (i + 1) c in
          let hi = go (i + 1) (c + 1) in
          let r = mk m i lo hi in
          Hashtbl.add memo (i, c) r;
          r
    end
  in
  go 0 0

let interval m ~n ~lo ~hi =
  if n < 0 then invalid_arg "Bdd.interval: negative n";
  counting m ~n ~accept:(fun c -> c >= lo && c <= hi)

let at_most m ~n ~k = interval m ~n ~lo:0 ~hi:k
let at_least m ~n ~k = interval m ~n ~lo:k ~hi:n

let rec eval nd env =
  match nd with
  | Zero -> false
  | One -> true
  | N { v; lo; hi; _ } -> if env v then eval hi env else eval lo env

let fold ~terminal ~node nd =
  let memo = Hashtbl.create 64 in
  let rec go nd =
    match nd with
    | Zero -> terminal false
    | One -> terminal true
    | N { id; v; lo; hi } -> (
        match Hashtbl.find_opt memo id with
        | Some r -> r
        | None ->
            let r = node v (go lo) (go hi) in
            Hashtbl.add memo id r;
            r)
  in
  go nd

let size nd =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go = function
    | Zero | One -> ()
    | N { id; lo; hi; _ } ->
        if not (Hashtbl.mem seen id) then begin
          Hashtbl.add seen id ();
          incr count;
          go lo;
          go hi
        end
  in
  go nd;
  !count

let num_nodes m = m.next_id - 2
