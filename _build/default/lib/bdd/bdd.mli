(** Reduced ordered binary decision diagrams.

    A small hash-consed BDD package sufficient for the minisat+-style
    translation of cardinality constraints into CNF (Eén & Sörensson,
    JSAT 2006), which msu4-v1 uses.  Variables are integers and the
    variable order is the integer order.

    All nodes live inside a {!manager}; nodes from different managers
    must not be mixed (this is not checked). *)

type manager
type node

val manager : unit -> manager
val zero : node
val one : node

val var : manager -> int -> node
(** The BDD of a single variable.  @raise Invalid_argument if negative. *)

val ite : manager -> node -> node -> node -> node
(** [ite m f g h] is if-then-else: [f ? g : h]. *)

val not_ : manager -> node -> node
val and_ : manager -> node -> node -> node
val or_ : manager -> node -> node -> node
val xor : manager -> node -> node -> node

val at_most : manager -> n:int -> k:int -> node
(** [at_most m ~n ~k] is the BDD over variables [0 .. n-1] that is true
    iff at most [k] of them are true.  Built directly (no applies), with
    [O(n * k)] nodes. *)

val at_least : manager -> n:int -> k:int -> node
val interval : manager -> n:int -> lo:int -> hi:int -> node
(** True iff the count of true variables lies within [\[lo, hi\]]. *)

val eval : node -> (int -> bool) -> bool
(** [eval nd env] evaluates under the assignment [env]. *)

val size : node -> int
(** Number of distinct internal nodes reachable (terminals excluded). *)

val is_terminal : node -> bool

val fold :
  terminal:(bool -> 'a) -> node:(int -> 'a -> 'a -> 'a) -> node -> 'a
(** Structural fold with memoization on shared subgraphs: [node v lo hi]
    receives the variable and the folded low/high branches. *)

val num_nodes : manager -> int
(** Total nodes ever hash-consed in this manager. *)
