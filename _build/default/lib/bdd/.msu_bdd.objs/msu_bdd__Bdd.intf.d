lib/bdd/bdd.mli:
