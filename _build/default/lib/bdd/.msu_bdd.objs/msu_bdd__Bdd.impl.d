lib/bdd/bdd.ml: Hashtbl
