lib/core/disjoint_cores.mli: Msu_cnf
