lib/core/wpm1.mli: Msu_cnf Types
