lib/core/pbo.ml: Array Common Msu_card Msu_cnf Msu_sat Printf Types Unix
