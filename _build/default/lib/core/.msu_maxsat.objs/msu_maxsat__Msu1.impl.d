lib/core/msu1.ml: Fu_malik Msu_card Types
