lib/core/msu2.ml: Array Fu_malik Msu_card Msu_cnf Types
