lib/core/lexico.ml: Array Common Hashtbl List Msu4 Msu_card Msu_cnf Printf Types Unix
