lib/core/maxsat.mli: Msu_cnf Types
