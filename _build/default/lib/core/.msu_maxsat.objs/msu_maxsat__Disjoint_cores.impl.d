lib/core/disjoint_cores.ml: Array List Msu_cnf Msu_sat
