lib/core/maxsat.ml: Branch_bound Brute Msu1 Msu2 Msu3 Msu4 Msu_card Msu_cnf Oll Pbo Types Wpm1
