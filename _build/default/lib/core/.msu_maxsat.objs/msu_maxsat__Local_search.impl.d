lib/core/local_search.ml: Array Common List Msu_cnf Random Types Unix
