lib/core/msu2.mli: Msu_cnf Types
