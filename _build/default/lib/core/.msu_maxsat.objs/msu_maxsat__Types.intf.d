lib/core/types.mli: Format Msu_card Msu_cnf
