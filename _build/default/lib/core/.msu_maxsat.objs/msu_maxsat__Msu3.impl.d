lib/core/msu3.ml: Array Common List Msu_card Msu_cnf Msu_sat Printf Types Unix
