lib/core/mcs.ml: Array Fun List Msu_card Msu_cnf Msu_sat
