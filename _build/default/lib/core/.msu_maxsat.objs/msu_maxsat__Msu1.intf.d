lib/core/msu1.mli: Msu_cnf Types
