lib/core/branch_bound.mli: Msu_cnf Types
