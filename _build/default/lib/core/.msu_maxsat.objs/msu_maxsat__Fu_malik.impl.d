lib/core/fu_malik.ml: Array Common List Msu_cnf Msu_sat Printf Types Unix
