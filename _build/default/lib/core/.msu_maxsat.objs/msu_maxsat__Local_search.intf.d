lib/core/local_search.mli: Msu_cnf Types
