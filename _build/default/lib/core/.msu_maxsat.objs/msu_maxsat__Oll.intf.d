lib/core/oll.mli: Msu_cnf Types
