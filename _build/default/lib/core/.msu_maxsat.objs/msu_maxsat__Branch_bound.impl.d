lib/core/branch_bound.ml: Array Common Hashtbl List Msu_cnf Queue Types Unix
