lib/core/brute.ml: Array Common Msu_cnf Types Unix
