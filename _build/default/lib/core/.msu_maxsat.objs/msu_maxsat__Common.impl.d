lib/core/common.ml: Msu_cnf Types Unix
