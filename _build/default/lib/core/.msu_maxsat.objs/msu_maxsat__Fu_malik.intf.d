lib/core/fu_malik.mli: Msu_cnf Types
