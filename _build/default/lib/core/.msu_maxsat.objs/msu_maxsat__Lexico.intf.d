lib/core/lexico.mli: Msu_cnf Types
