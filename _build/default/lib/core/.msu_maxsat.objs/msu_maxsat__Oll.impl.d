lib/core/oll.ml: Array Common Hashtbl List Msu_card Msu_cnf Msu_sat Printf Seq Types Unix
