lib/core/common.mli: Msu_cnf Types
