lib/core/brute.mli: Msu_cnf Types
