lib/core/msu4.mli: Msu_cnf Types
