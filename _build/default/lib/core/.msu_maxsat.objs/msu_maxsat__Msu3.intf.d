lib/core/msu3.mli: Msu_cnf Types
