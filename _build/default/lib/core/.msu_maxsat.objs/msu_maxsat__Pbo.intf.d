lib/core/pbo.mli: Msu_cnf Types
