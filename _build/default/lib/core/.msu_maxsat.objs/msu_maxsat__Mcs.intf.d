lib/core/mcs.mli: Msu_cnf
