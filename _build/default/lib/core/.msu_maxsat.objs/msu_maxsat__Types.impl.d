lib/core/types.ml: Format Msu_card Msu_cnf
