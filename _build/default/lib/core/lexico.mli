(** Boolean multilevel (lexicographic) optimization.

    Many weighted EDA instances are secretly {e lexicographic}: weights
    come in levels where each level outweighs everything below it
    combined (Argelich, Lynce & Marques-Silva, "Boolean lexicographic
    optimization").  Such instances decompose into a cascade of
    {e unweighted} MaxSAT problems — solve the heaviest level with any
    unit-weight algorithm (msu4!), harden its optimum as a cardinality
    constraint, and descend.

    This gives the paper's unweighted algorithms a sound weighted
    upgrade path orthogonal to WPM1's weight splitting. *)

val is_bmo : Msu_cnf.Wcnf.t -> bool
(** True when the distinct weights [w1 > w2 > ...] satisfy the Boolean
    multilevel property: each [wi] strictly exceeds the total weight of
    all softer levels.  Unit-weight instances qualify trivially. *)

val solve :
  ?config:Types.config ->
  ?inner:(?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result) ->
  Msu_cnf.Wcnf.t ->
  Types.result
(** Stratified solve.  [inner] (default {!Msu4.solve}) is invoked once
    per weight level on a unit-weight sub-instance.
    @raise Invalid_argument when the instance is not BMO (check with
    {!is_bmo}; use {!Wpm1} otherwise). *)
