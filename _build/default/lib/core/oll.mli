(** OLL: core-guided MaxSAT with soft cardinality constraints.

    OLL (Andres, Kaufmann, Matheis & Schaub 2012, for ASP; ported to
    MaxSAT by Morgado, Dodaro & Marques-Silva 2014) is the modern
    descendant of the msu line and the engine of RC2, today's reference
    core-guided solver.  It is included here as the natural "where this
    paper's idea went" extension.

    Mechanics (unweighted): soft clauses are guarded by assumption
    literals.  Each UNSAT answer yields a core over the current
    assumptions; the algorithm drops those assumptions, builds a
    totalizer over the core's literals, and {e re-enters} the
    totalizer's outputs as new assumptions ("at most 1 of the core may
    be violated, then at most 2, ...").  The first SAT answer proves
    the accumulated lower bound optimal.  Everything is incremental:
    one solver instance, no rebuilds. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** Unit weights and hard clauses.
    @raise Invalid_argument on non-unit soft weights. *)
