module Card = Msu_card.Card

let linear_exactly_one sink lits =
  sink.Msu_cnf.Sink.emit (Array.copy lits);
  Card.at_most sink Card.Seqcounter lits 1

let solve ?(config = Types.default_config) w =
  Fu_malik.run { exactly_one = linear_exactly_one } config w
