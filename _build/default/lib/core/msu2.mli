(** msu2 (Marques-Silva & Planes, CoRR abs/0712.0097): Fu & Malik's
    algorithm with the quadratic pairwise exactly-one constraints
    replaced by a linear encoding (sequential counter).

    On instances whose cores are large, msu1's pairwise constraints
    grow quadratically per core; msu2 keeps the constraint CNF linear
    in the core size, which is the first of the two improvements over
    msu1 described in the msu4 paper's related-work discussion (the
    second, reducing blocking variables to one per clause, is
    {!Msu3}). *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** @raise Invalid_argument on non-unit soft weights. *)
