(** Branch-and-bound MaxSAT in the maxsatz style (Li, Manyà & Planes,
    AAAI'06 / JAIR'07) — the strongest solver family of the 2007 MaxSAT
    evaluation and the paper's primary baseline.

    A DPLL search counts falsified soft clauses; at every node the lower
    bound is the current count plus the number of {e disjoint
    inconsistent subformulas} detected by simulated unit propagation.
    Pure-literal and dominating-unit-clause inference fire before each
    branching decision, and branching follows weighted occurrence
    counts favouring short clauses.

    These bounds are strong on random and crafted instances but weak on
    large structured industrial formulas — the phenomenon Table 1 of
    the msu4 paper quantifies and this implementation reproduces.

    [stats.sat_calls] reports search nodes and [stats.cores] the number
    of inconsistent subformulas detected by the lower bound. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** Handles hard clauses (never falsified) and arbitrary positive soft
    weights (maxsatz itself is a weighted solver). *)
