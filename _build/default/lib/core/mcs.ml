module Lit = Msu_cnf.Lit
module Wcnf = Msu_cnf.Wcnf
module Solver = Msu_sat.Solver
module Card = Msu_card.Card

type outcome = { mcses : int list list; complete : bool }

let enumerate ?deadline ?(limit = 64) w =
  let n_soft = Wcnf.num_soft w in
  let s = Solver.create ~track_proof:false () in
  Solver.ensure_vars s (Wcnf.num_vars w);
  Wcnf.iter_hard (fun _ c -> Solver.add_clause s c) w;
  let blocks =
    Array.init n_soft (fun i ->
        let b = Lit.pos (Solver.new_var s) in
        Solver.add_clause s (Array.append (Wcnf.soft w i) [| b |]);
        b)
  in
  let tree = Card.Totalizer_tree.build (Solver.sink s) blocks in
  (* Hard clauses satisfiable at all?  (k = n_soft means no bound.) *)
  match Solver.solve ?deadline s with
  | Solver.Unsat -> None
  | Solver.Unknown -> Some { mcses = []; complete = false }
  | Solver.Sat ->
      let found = ref [] in
      let n_found = ref 0 in
      let complete = ref true in
      (* The genuinely falsified soft clauses, not the spuriously set
         relaxation variables. *)
      let correction_set model =
        List.filter
          (fun i -> not (Msu_cnf.Formula.clause_satisfied (Wcnf.soft w i) model))
          (List.init n_soft Fun.id)
      in
      let block set =
        Solver.add_clause s (Array.of_list (List.map (fun i -> Lit.neg blocks.(i)) set))
      in
      let k = ref 0 in
      let stop = ref false in
      while (not !stop) && !k <= n_soft do
        let assumptions =
          match Card.Totalizer_tree.at_most_assumption tree !k with
          | Some l -> [| l |]
          | None -> [||]
        in
        match Solver.solve ~assumptions ?deadline s with
        | Solver.Unknown ->
            complete := false;
            stop := true
        | Solver.Unsat ->
            (* Level exhausted; a final unbounded UNSAT means all MCSes
               are blocked and the enumeration is complete. *)
            if Array.length assumptions = 0 then stop := true else incr k
        | Solver.Sat ->
            let set = correction_set (Solver.model s) in
            (* The empty set only happens when the instance is fully
               satisfiable: the unique MCS is empty. *)
            if set = [] then stop := true
            else begin
              found := set :: !found;
              incr n_found;
              block set;
              if !n_found >= limit then begin
                complete := false;
                stop := true
              end
            end
      done;
      Some { mcses = List.rev !found; complete = !complete }
