let solve ?(config = Types.default_config) w =
  Fu_malik.run { exactly_one = Msu_card.Card.exactly_one } config w
