(** Stochastic local search for (weighted partial) MaxSAT.

    A WalkSAT-style incomplete solver: pick a falsified clause, flip one
    of its variables (greedy break-weight minimization with noise).
    Hard clauses carry an effectively infinite weight, so search
    gravitates to feasible assignments and the best feasible cost seen
    is an upper bound on the optimum.

    The paper's section 2 notes that incomplete MaxSAT was the state of
    the art for industrial design debugging before msu4; this module
    both represents that baseline and serves as an upper-bound seeder
    for the branch-and-bound solver.

    Results are always [Bounds { lb = 0; ub }] (the method proves
    nothing), with the best model attached — or [Optimum 0] when a
    zero-cost assignment is found, which {e is} a proof. *)

val solve :
  ?config:Types.config ->
  ?max_flips:int ->
  ?noise:float ->
  ?seed:int ->
  Msu_cnf.Wcnf.t ->
  Types.result
(** [max_flips] defaults to [100_000]; [noise] is the random-walk
    probability (default 0.2); [seed] fixes the run (default 0). *)

val best_cost :
  ?max_flips:int -> ?seed:int -> Msu_cnf.Wcnf.t -> (int * bool array) option
(** Convenience: the best feasible (cost, model) found, if any. *)
