(** Internal helpers shared by the MaxSAT algorithms. *)

val require_unit_weights : Msu_cnf.Wcnf.t -> unit
(** @raise Invalid_argument when a soft clause has weight <> 1; the
    unweighted algorithms of the paper call this up front. *)

val over_deadline : Types.config -> bool

val finish :
  t0:float -> stats:Types.stats -> Types.outcome -> bool array option -> Types.result

(** A mutable statistics accumulator threaded through an algorithm run. *)
module Tally : sig
  type t

  val create : unit -> t
  val sat_call : t -> unit
  val core : t -> unit
  val blocking_var : t -> unit
  val encoded : t -> int -> unit
  val snapshot : t -> Types.stats
end

val trace : Types.config -> (unit -> string) -> unit
(** Lazily formats the message when tracing is enabled. *)
