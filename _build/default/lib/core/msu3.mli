(** msu3 (Marques-Silva & Planes, CoRR abs/0712.0097): core-guided
    lower-bound search with at most one blocking variable per clause.

    Maintains a bound [lambda] (initially 0) and the set of relaxed soft
    clauses.  Each iteration solves [phi_W /\ CNF(sum b <= lambda)]: on
    UNSAT, the unrelaxed soft clauses of the core are relaxed and
    [lambda] increases by one; on SAT, [lambda] is the optimum.  This is
    the linear UNSAT-to-SAT search that later solvers (e.g. Open-WBO's
    MSU3 mode) industrialized. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** @raise Invalid_argument on non-unit soft weights. *)
