(** Shared engine for the Fu & Malik family (msu1, msu2).

    Both algorithms add a fresh blocking variable to every soft clause
    of each successive unsatisfiable core and constrain each batch with
    an exactly-one constraint; they differ only in how that constraint
    is encoded (pairwise in msu1, linear in msu2). *)

type options = {
  exactly_one : Msu_cnf.Sink.t -> Msu_cnf.Lit.t array -> unit;
      (** encoder for each core's exactly-one constraint *)
}

val run : options -> Types.config -> Msu_cnf.Wcnf.t -> Types.result
