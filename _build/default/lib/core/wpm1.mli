(** WPM1: the weighted generalization of Fu & Malik's algorithm
    (Ansótegui, Bonet & Levy, SAT'09; Manquinho, Marques-Silva & Planes
    developed the contemporaneous WBO).  This is the natural "future
    work" continuation of the msu4 paper's algorithm family to weighted
    partial MaxSAT.

    On each unsatisfiable core, let [wmin] be the minimum weight among
    its soft clauses.  Every core clause of weight [w > wmin] is split:
    a duplicate without a new blocking variable keeps weight [w - wmin],
    while the original drops to [wmin] and receives a fresh blocking
    variable.  An exactly-one constraint over the new blocking variables
    is added and the cost increases by [wmin].  The first satisfiable
    call proves optimality. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** Accepts arbitrary positive weights and hard clauses. *)
