(** Exhaustive reference MaxSAT solver.

    Enumerates all assignments; exponential and only meant as the ground
    truth for testing the real algorithms on small instances. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** Handles weights and hard clauses.
    @raise Invalid_argument beyond 24 variables. *)
