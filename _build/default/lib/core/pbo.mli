(** The PBO formulation of MaxSAT (section 2.2 of the msu4 paper).

    Every soft clause receives a blocking variable up front; the
    objective "minimize the number of blocking variables assigned 1" is
    then solved SAT-style the way minisat+ does: find a model, constrain
    the cost below it, repeat until UNSAT ([`Linear]); or bisect on the
    cost with a reusable totalizer and assumption literals
    ([`Binary]).

    This is the baseline the paper labels "pbo": correct, simple, and —
    as Table 1 shows — handicapped on industrial instances by the huge
    number of blocking variables (one per clause, dwarfing the original
    variable count). *)

val solve :
  ?config:Types.config ->
  ?search:[ `Linear | `Binary ] ->
  Msu_cnf.Wcnf.t ->
  Types.result
(** Default search is [`Linear] (minisat+'s default minimization
    strategy).  Unit-weight instances use {!Types.config.encoding} for
    the bound; weighted instances use the generalized totalizer
    ({!Msu_card.Gte}).  [`Binary] bisects over one reusable counter with
    assumption literals.  Arbitrary positive weights are accepted. *)
