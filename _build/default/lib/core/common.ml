let require_unit_weights w =
  let ok = ref true in
  Msu_cnf.Wcnf.iter_soft (fun _ _ weight -> if weight <> 1 then ok := false) w;
  if not !ok then
    invalid_arg "this MaxSAT algorithm handles unit soft weights only (use stratification)"

let over_deadline (cfg : Types.config) =
  cfg.deadline < infinity && Unix.gettimeofday () > cfg.deadline

let finish ~t0 ~stats outcome model =
  Types.{ outcome; model; stats; elapsed = Unix.gettimeofday () -. t0 }

module Tally = struct
  type t = {
    mutable sat_calls : int;
    mutable cores : int;
    mutable blocking_vars : int;
    mutable encoding_clauses : int;
  }

  let create () = { sat_calls = 0; cores = 0; blocking_vars = 0; encoding_clauses = 0 }
  let sat_call t = t.sat_calls <- t.sat_calls + 1
  let core t = t.cores <- t.cores + 1
  let blocking_var t = t.blocking_vars <- t.blocking_vars + 1
  let encoded t n = t.encoding_clauses <- t.encoding_clauses + n

  let snapshot (t : t) =
    Types.
      {
        sat_calls = t.sat_calls;
        cores = t.cores;
        blocking_vars = t.blocking_vars;
        encoding_clauses = t.encoding_clauses;
      }
end

let trace (cfg : Types.config) msg =
  match cfg.trace with None -> () | Some f -> f (msg ())
