(** Minimal correction set (MCS) enumeration.

    An MCS is an inclusion-minimal set of soft clauses whose removal
    makes the instance satisfiable; its complement is a maximal
    satisfiable subset (MSS).  MCSes are the hitting-set duals of MUSes
    (Liffiton & Sakallah — the paper's reference [19] — and Reiter's
    diagnosis theory), and the smallest MCS cardinality {e is} the
    MaxSAT cost.  In the design-debugging reading, each MCS is one
    alternative repair set.

    Enumeration is by increasing cardinality with superset blocking: a
    fresh model is sought with at most [k] relaxations active, each
    found set is blocked, [k] grows when the level is exhausted.  This
    yields exactly the MCSes, smallest first. *)

type outcome = {
  mcses : int list list;  (** soft-index sets, ordered by cardinality *)
  complete : bool;
      (** [true] when every MCS was enumerated; [false] on a budget or
          [limit] stop *)
}

val enumerate :
  ?deadline:float -> ?limit:int -> Msu_cnf.Wcnf.t -> outcome option
(** [enumerate w] lists the non-empty MCSes ([limit] caps the count,
    default 64).  Returns [None] when the hard clauses are
    unsatisfiable; a fully satisfiable instance has no non-empty
    correction set and yields [mcses = []].  The first MCS (if any) has
    minimum cardinality = the MaxSAT cost of [w]. *)
