module Wcnf = Msu_cnf.Wcnf
module Solver = Msu_sat.Solver

type t = { cores : int list list; lower_bound : int; exhausted : bool }

let find ?deadline w =
  let removed = Array.make (max (Wcnf.num_soft w) 1) false in
  let build () =
    let s = Solver.create () in
    Solver.ensure_vars s (Wcnf.num_vars w);
    Wcnf.iter_hard (fun _ c -> Solver.add_clause s c) w;
    Wcnf.iter_soft (fun i c _ -> if not removed.(i) then Solver.add_clause ~id:i s c) w;
    s
  in
  let rec loop cores =
    let s = build () in
    match Solver.solve ?deadline s with
    | Solver.Sat ->
        Some { cores = List.rev cores; lower_bound = List.length cores; exhausted = true }
    | Solver.Unknown ->
        Some
          { cores = List.rev cores; lower_bound = List.length cores; exhausted = false }
    | Solver.Unsat -> (
        match Solver.unsat_core s with
        | [] ->
            (* Refutation without soft clauses: the hards are
               contradictory (possible only before any core was found,
               since removing softs cannot make hards unsat). *)
            None
        | core ->
            List.iter (fun i -> removed.(i) <- true) core;
            loop (core :: cores))
  in
  loop []
