(** Fu & Malik's core-guided algorithm (SAT'06), called msu1 in the
    msu4 paper.

    Repeatedly SAT-solve; on each unsatisfiable core, add a {e fresh}
    blocking variable to every soft clause in the core (a clause hit by
    [k] cores accumulates [k] blocking variables — the drawback msu4
    removes), constrain the new variables with an exactly-one
    constraint, and increment the cost.  The first satisfiable call
    proves the accumulated cost optimal.

    The exactly-one constraints use the pairwise encoding, as in the
    original implementation; see {!Msu2} for the linear-encoding
    variant. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** @raise Invalid_argument on non-unit soft weights. *)
