(** Disjoint unsatisfiable cores and the MaxSAT bound of Proposition 1.

    Proposition 1 of the paper: if a formula contains [K] pairwise
    disjoint unsatisfiable cores, then at most [|phi| - K] clauses are
    satisfiable — i.e. the MaxSAT cost is at least [K].  (The same idea
    under unit propagation powers maxsatz's lower bound; here it is the
    full SAT-solver version, also usable to warm-start core-guided
    algorithms.)

    For a partial instance, cores are disjoint on their {e soft}
    clauses; hard clauses are shared freely. *)

type t = {
  cores : int list list;  (** disjoint soft-clause index sets *)
  lower_bound : int;  (** [List.length cores]: a lower bound on cost *)
  exhausted : bool;
      (** [true] when the remaining softs plus hards are satisfiable
          (no further disjoint core exists); [false] on budget stop *)
}

val find : ?deadline:float -> Msu_cnf.Wcnf.t -> t option
(** Iteratively refute, withdraw the core's soft clauses, repeat.
    Returns [None] when the hard clauses alone are unsatisfiable. *)
