(** The msu4 core-guided MaxSAT algorithm (Marques-Silva & Planes,
    DATE 2008), Algorithm 1 of the paper.

    msu4 alternates SAT calls on a working formula [phi_W]:

    {ul
    {- {b UNSAT}: extract an unsatisfiable core.  Every not-yet-relaxed
       soft clause in the core receives one fresh blocking variable
       (each soft clause carries {e at most one} — the algorithm's key
       difference from Fu & Malik's msu1).  Optionally, a constraint
       "at least one of the new blocking variables is true" is added
       (line 19 of Algorithm 1; see {!Types.config.core_geq1}).  If the
       core contains no unrelaxed soft clause, the current upper bound
       is returned as the optimum.}
    {- {b SAT}: the model's cost refines the upper bound, and the
       cardinality constraint "fewer blocking variables than the model
       used" (line 30) is added.  When the lower bound — the number of
       UNSAT iterations — meets the upper bound, the optimum is
       reached.}}

    The cardinality constraints are encoded per
    {!Types.config.encoding}: [Bdd] reproduces the paper's v1,
    [Sortnet] its v2.

    This implementation extends the paper to {e partial} MaxSAT in the
    standard way (hard clauses are never relaxed and never appear in
    the reported cores); weights must be 1. *)

val solve : ?config:Types.config -> Msu_cnf.Wcnf.t -> Types.result
(** @raise Invalid_argument on non-unit soft weights. *)
