(** Equivalence-checking instance family.

    A random netlist is re-synthesized through the hash-consing,
    constant-folding {!Msu_circuit.Circuit} builder — a semantics-
    preserving restructuring — and a miter between the original and the
    re-synthesized version is encoded to CNF.  Because the two are
    functionally identical the miter is unsatisfiable: the classic
    combinational equivalence-checking workload. *)

val to_circuit :
  Msu_circuit.Netlist.t ->
  Msu_circuit.Circuit.t * Msu_circuit.Circuit.node array
(** Rebuild the netlist as a hash-consed circuit; returns the builder
    and the output nodes. *)

val miter_formula : Msu_circuit.Netlist.t -> Msu_cnf.Formula.t
(** CNF asserting "some output differs" between the netlist and its
    re-synthesized self.  Unsatisfiable. *)

val instance :
  Random.State.t -> n_inputs:int -> n_gates:int -> n_outputs:int -> Msu_cnf.Formula.t
(** [miter_formula] of a fresh random netlist. *)
