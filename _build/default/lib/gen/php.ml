module Lit = Msu_cnf.Lit
module Formula = Msu_cnf.Formula

let formula n =
  if n < 1 then invalid_arg "Php.formula: need at least one hole";
  let f = Formula.create () in
  let var p h = (p * n) + h in
  Formula.ensure_vars f ((n + 1) * n);
  for p = 0 to n do
    ignore (Formula.add_clause f (Array.init n (fun h -> Lit.pos (var p h))))
  done;
  for h = 0 to n - 1 do
    for p1 = 0 to n do
      for p2 = p1 + 1 to n do
        ignore (Formula.add_clause f [| Lit.neg_of (var p1 h); Lit.neg_of (var p2 h) |])
      done
    done
  done;
  f

let num_clauses n = n + 1 + (n * (n + 1) * n / 2)
