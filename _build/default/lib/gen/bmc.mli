(** Bounded-model-checking instance family.

    Two parameterized sequential designs with {e unreachable} bad
    states, so the unrolled CNF is unsatisfiable at every depth — the
    "model checking" slice of the industrial suite the msu4 paper
    evaluates on:

    {ul
    {- a modulo-[limit] enabled counter asked whether it ever reaches a
       [target >= limit];}
    {- a Fibonacci LFSR (with a tap on bit 0, hence an invertible
       transition) asked whether it ever reaches the all-zero state
       from a nonzero seed.}} *)

val counter_spec : width:int -> limit:int -> target:int -> Msu_circuit.Unroll.spec
(** @raise Invalid_argument unless [0 < limit <= target < 2^width]. *)

val lfsr_spec : width:int -> taps:int list -> Msu_circuit.Unroll.spec
(** [taps] are bit positions; position [0] is forced in to keep the
    transition invertible. *)

val counter_formula :
  width:int -> limit:int -> target:int -> depth:int -> Msu_cnf.Formula.t
(** The Tseitin CNF of the [depth]-frame unrolling with the bad output
    asserted — unsatisfiable by construction. *)

val lfsr_formula : width:int -> taps:int list -> depth:int -> Msu_cnf.Formula.t
