module Lit = Msu_cnf.Lit
module Formula = Msu_cnf.Formula

let random_clause st n_vars k =
  let k = min k n_vars in
  (* Rejection-sample k distinct variables. *)
  let chosen = Array.make k (-1) in
  let taken v = Array.exists (fun x -> x = v) chosen in
  for i = 0 to k - 1 do
    let v = ref (Random.State.int st n_vars) in
    while taken !v do
      v := Random.State.int st n_vars
    done;
    chosen.(i) <- !v
  done;
  Array.map (fun v -> Lit.make v (Random.State.bool st)) chosen

let ksat st ~n_vars ~n_clauses ~k =
  let f = Formula.create () in
  Formula.ensure_vars f n_vars;
  for _ = 1 to n_clauses do
    ignore (Formula.add_clause f (random_clause st n_vars k))
  done;
  f

let unsat_ksat st ~n_vars ~ratio ~k =
  let n_clauses = int_of_float (ratio *. float_of_int n_vars) in
  let rec roll attempts =
    if attempts > 100 then
      invalid_arg "Random_cnf.unsat_ksat: ratio too low to find unsat instances";
    let f = ksat st ~n_vars ~n_clauses ~k in
    let s = Msu_sat.Solver.create ~track_proof:false () in
    Formula.iter_clauses (fun _ c -> Msu_sat.Solver.add_clause s c) f;
    match Msu_sat.Solver.solve s with
    | Msu_sat.Solver.Unsat -> f
    | Msu_sat.Solver.Sat | Msu_sat.Solver.Unknown -> roll (attempts + 1)
  in
  roll 0
