(** Random k-SAT generation.

    At clause/variable ratios well above the satisfiability threshold
    (~4.27 for 3-SAT) the generated formulas are unsatisfiable with
    overwhelming probability; {!unsat_ksat} additionally verifies this
    with the CDCL solver and rerolls until refuted, so callers always
    receive a genuinely unsatisfiable instance. *)

val ksat :
  Random.State.t -> n_vars:int -> n_clauses:int -> k:int -> Msu_cnf.Formula.t
(** Clauses with [k] distinct variables, signs uniform. *)

val unsat_ksat :
  Random.State.t -> n_vars:int -> ratio:float -> k:int -> Msu_cnf.Formula.t
(** [n_clauses = ratio * n_vars], rerolled until the solver refutes it.
    Use ratios comfortably above the threshold so the first roll almost
    always succeeds. *)
