(** Test-pattern-generation instance family.

    SAT-based ATPG asks for an input vector that distinguishes a fault-
    free circuit from a faulty one; the CNF is a miter between the two.
    For a {e redundant} (untestable) fault no such vector exists and the
    CNF is unsatisfiable — exactly the hard unsatisfiable instances
    test-generation tools produce and that the msu4 paper's suite
    contains.

    Redundancy is planted: the generator grafts [a AND NOT a] terms
    (constant false) onto randomly chosen outputs and injects
    stuck-at-0 faults on them, so untestability holds by construction. *)

val instance :
  Random.State.t ->
  n_inputs:int ->
  n_gates:int ->
  n_outputs:int ->
  n_faults:int ->
  Msu_cnf.Formula.t
(** Miter CNF between the redundancy-augmented netlist and its faulty
    version ([n_faults] planted-redundant lines stuck at 0).
    Unsatisfiable. *)

val plant_redundancy :
  Random.State.t ->
  Msu_circuit.Netlist.t ->
  n_faults:int ->
  Msu_circuit.Netlist.t * Msu_circuit.Netlist.t
(** [(good, faulty)] — the augmented netlist and its stuck-at version;
    functionally equivalent. *)
