module Netlist = Msu_circuit.Netlist
module Formula = Msu_cnf.Formula
module Sink = Msu_cnf.Sink

(* Stuck-at-0 on the output of gate [i] is modelled by replacing it
   with [Xor(a, a)], which is constantly false and needs no dedicated
   constant-gate kind. *)
let stuck_at_zero (nl : Netlist.t) gate_idx =
  let gates = Array.copy nl.Netlist.gates in
  let a = gates.(gate_idx).Netlist.a in
  gates.(gate_idx) <- Netlist.{ kind = Xor; a; b = a };
  { nl with Netlist.gates }

let plant_redundancy st (nl : Netlist.t) ~n_faults =
  let base_inputs = nl.Netlist.n_inputs in
  let gates = ref (Array.to_list nl.Netlist.gates) in
  let n_base_gates = Array.length nl.Netlist.gates in
  let outputs = Array.copy nl.Netlist.outputs in
  let extra = ref [] in
  let fault_sites = ref [] in
  (* Each fault site: pick a signal a and an output slot o; append
     not_a = Not(a); red = And(a, not_a); new_out = Or(out_sig, red);
     redirect the output to new_out.  [red] stuck at 0 is untestable. *)
  for k = 0 to n_faults - 1 do
    let gate_count = n_base_gates + (3 * k) in
    let signal_limit = base_inputs + gate_count in
    let a = Random.State.int st signal_limit in
    let o = Random.State.int st (Array.length outputs) in
    let not_a = base_inputs + gate_count in
    let red = not_a + 1 in
    let new_out = red + 1 in
    extra :=
      Netlist.{ kind = Or; a = outputs.(o); b = red }
      :: Netlist.{ kind = And; a; b = not_a }
      :: Netlist.{ kind = Not; a; b = 0 }
      :: !extra;
    fault_sites := (red - base_inputs) :: !fault_sites;
    outputs.(o) <- new_out
  done;
  let good =
    Netlist.
      {
        n_inputs = base_inputs;
        gates = Array.of_list (!gates @ List.rev !extra);
        outputs;
      }
  in
  Netlist.validate good;
  let faulty = List.fold_left stuck_at_zero good !fault_sites in
  (good, faulty)

let instance st ~n_inputs ~n_gates ~n_outputs ~n_faults =
  let nl = Netlist.random st ~n_inputs ~n_gates ~n_outputs in
  let good, faulty = plant_redundancy st nl ~n_faults in
  let f = Formula.create () in
  Netlist.miter good faulty (Sink.of_formula f);
  f
