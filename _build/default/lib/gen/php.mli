(** Pigeonhole formulas.

    [PHP(n+1, n)] — [n+1] pigeons into [n] holes — is the classic
    provably-hard unsatisfiable family.  Its MaxSAT optimum is exactly
    one less than the clause count (removing any single "pigeon goes
    somewhere" clause makes it satisfiable). *)

val formula : int -> Msu_cnf.Formula.t
(** [formula n] is PHP(n+1, n): [n+1] at-least-one clauses plus the
    pairwise hole-exclusivity clauses.  Unsatisfiable for [n >= 1].
    @raise Invalid_argument for [n < 1]. *)

val num_clauses : int -> int
(** Clause count of [formula n] without building it. *)
