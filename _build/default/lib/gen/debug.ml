module Netlist = Msu_circuit.Netlist
module Wcnf = Msu_cnf.Wcnf
module Lit = Msu_cnf.Lit
module Sink = Msu_cnf.Sink

type instance = {
  wcnf : Msu_cnf.Wcnf.t;
  buggy_gate : int;
  relax_vars : Msu_cnf.Lit.var array;
  n_vectors : int;
}

let random_vector st n = Array.init n (fun _ -> Random.State.bool st)

(* Encode one vector copy of the buggy netlist into [w].  Gate clauses
   are widened with the gate's relaxation literal in `Partial mode; in
   `Plain mode every clause (pins included) is soft and unrelaxed. *)
let encode_copy w ~encoding ~relax (buggy : Netlist.t) vec correct_out =
  let add_clause c =
    match encoding with
    | `Partial -> Wcnf.add_hard w c
    | `Plain -> ignore (Wcnf.add_soft w c)
  in
  let n_in = buggy.Netlist.n_inputs in
  let lits = Array.make (Netlist.signal_count buggy) (Lit.pos 0) in
  for i = 0 to n_in - 1 do
    let l = Lit.pos (Wcnf.fresh_var w) in
    lits.(i) <- l;
    add_clause [| (if vec.(i) then l else Lit.neg l) |]
  done;
  Array.iteri
    (fun gi (g : Netlist.gate) ->
      let z = Lit.pos (Wcnf.fresh_var w) in
      lits.(n_in + gi) <- z;
      let widen =
        match encoding with
        | `Partial -> fun c -> Array.append c [| Lit.pos relax.(gi) |]
        | `Plain -> fun c -> c
      in
      let sink = Sink.{ fresh_var = (fun () -> Wcnf.fresh_var w); emit = (fun c -> add_clause (widen c)) } in
      let b = match g.Netlist.kind with Netlist.Not | Netlist.Buf -> z | _ -> lits.(g.Netlist.b) in
      Netlist.emit_gate sink g.Netlist.kind z lits.(g.Netlist.a) b)
    buggy.Netlist.gates;
  Array.iteri
    (fun oi o ->
      let l = lits.(o) in
      add_clause [| (if correct_out.(oi) then l else Lit.neg l) |])
    buggy.Netlist.outputs

let instance ?gate_weight st ~n_inputs ~n_gates ~n_outputs ~n_vectors ~encoding =
  (* Find a netlist, mutation and vector set where the bug shows. *)
  let rec sample attempts =
    if attempts > 200 then invalid_arg "Debug.instance: could not expose a bug";
    let nl = Netlist.random st ~n_inputs ~n_gates ~n_outputs in
    let buggy, gate = Netlist.mutate_gate st nl in
    let vectors = Array.init n_vectors (fun _ -> random_vector st n_inputs) in
    let exposed =
      Array.exists
        (fun v -> Netlist.eval_outputs nl v <> Netlist.eval_outputs buggy v)
        vectors
    in
    if exposed then (nl, buggy, gate, vectors) else sample (attempts + 1)
  in
  let nl, buggy, gate, vectors = sample 0 in
  let w = Wcnf.create () in
  let relax =
    match encoding with
    | `Partial -> Array.init n_gates (fun _ -> Wcnf.fresh_var w)
    | `Plain -> [||]
  in
  Array.iter
    (fun vec ->
      let correct_out = Netlist.eval_outputs nl vec in
      encode_copy w ~encoding ~relax buggy vec correct_out)
    vectors;
  (* One soft unit per gate: prefer not to suspect it.  A gate weight
     models non-uniform repair cost (e.g. criticality or area). *)
  (match encoding with
  | `Partial ->
      Array.iteri
        (fun gi r ->
          let weight = match gate_weight with None -> 1 | Some f -> f gi in
          ignore (Wcnf.add_soft w ~weight [| Lit.neg_of r |]))
        relax
  | `Plain -> ());
  { wcnf = w; buggy_gate = gate; relax_vars = relax; n_vectors }
