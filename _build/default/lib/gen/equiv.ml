module Circuit = Msu_circuit.Circuit
module Netlist = Msu_circuit.Netlist
module Formula = Msu_cnf.Formula
module Lit = Msu_cnf.Lit
module Sink = Msu_cnf.Sink

let to_circuit (nl : Netlist.t) =
  let c = Circuit.create () in
  let signals = Array.make (Netlist.signal_count nl) (Circuit.const c false) in
  for i = 0 to nl.Netlist.n_inputs - 1 do
    signals.(i) <- Circuit.input c
  done;
  Array.iteri
    (fun i (g : Netlist.gate) ->
      let a = signals.(g.Netlist.a) in
      let b () = signals.(g.Netlist.b) in
      let node =
        match g.Netlist.kind with
        | Netlist.And -> Circuit.and_ c a (b ())
        | Netlist.Or -> Circuit.or_ c a (b ())
        | Netlist.Xor -> Circuit.xor_ c a (b ())
        | Netlist.Nand -> Circuit.nand_ c a (b ())
        | Netlist.Nor -> Circuit.nor_ c a (b ())
        | Netlist.Xnor -> Circuit.xnor_ c a (b ())
        | Netlist.Not -> Circuit.not_ c a
        | Netlist.Buf -> a
      in
      signals.(nl.Netlist.n_inputs + i) <- node)
    nl.Netlist.gates;
  (c, Array.map (fun o -> signals.(o)) nl.Netlist.outputs)

let miter_formula nl =
  let f = Formula.create () in
  let sink = Sink.of_formula f in
  let inputs =
    Array.init nl.Netlist.n_inputs (fun _ -> Lit.pos (Formula.fresh_var f))
  in
  let netlist_lits = Netlist.tseitin ~inputs nl sink in
  let c, outputs = to_circuit nl in
  let map = Circuit.tseitin ~input_lits:inputs c sink (Array.to_list outputs) in
  (* XOR each output pair; assert that at least one differs. *)
  let diffs =
    Array.map2
      (fun o node ->
        let a = netlist_lits.(o) in
        let b = map.Circuit.lit_of node in
        let z = Lit.pos (Formula.fresh_var f) in
        ignore (Formula.add_clause f [| Lit.neg z; a; b |]);
        ignore (Formula.add_clause f [| Lit.neg z; Lit.neg a; Lit.neg b |]);
        ignore (Formula.add_clause f [| z; Lit.neg a; b |]);
        ignore (Formula.add_clause f [| z; a; Lit.neg b |]);
        z)
      nl.Netlist.outputs outputs
  in
  ignore (Formula.add_clause f diffs);
  f

let instance st ~n_inputs ~n_gates ~n_outputs =
  miter_formula (Netlist.random st ~n_inputs ~n_gates ~n_outputs)
