(** Graph-coloring MaxSAT instances (register-allocation flavour).

    The paper's introduction cites scheduling and routing among
    MaxSAT's application domains; the canonical such encoding is
    k-coloring with conflict minimization, which is register allocation
    when the graph is the interference graph of live ranges.

    Encoding: hard exactly-one-color constraints per vertex; for every
    edge and every color one soft clause "the endpoints do not share
    this color".  With exactly-one in force, a conflicting edge
    falsifies exactly one of its clauses, so the MaxSAT cost equals the
    number of conflicting edges. *)

type graph = { n_vertices : int; edges : (int * int) list }

val random_graph : Random.State.t -> n_vertices:int -> edge_prob:float -> graph

val interval_graph :
  Random.State.t -> n_intervals:int -> horizon:int -> max_len:int -> graph
(** Interference graph of random live intervals on a linear timeline —
    the structure register allocators color. *)

val encode : graph -> colors:int -> Msu_cnf.Wcnf.t
(** Variable [v * colors + c] is "vertex [v] has color [c]".
    @raise Invalid_argument for [colors < 1]. *)

val conflicts : graph -> colors:int -> coloring:int array -> int
(** Number of edges whose endpoints share a color — the reference cost
    function.  @raise Invalid_argument on an out-of-range color. *)

val min_conflicts_brute : graph -> colors:int -> int
(** Exhaustive optimum (guarded: [colors^n_vertices <= 2_000_000]). *)
