(** Design-debugging MaxSAT instances (Safarpour et al., FMCAD'07 — the
    application that motivated msu4 and the paper's Table 2).

    Construction: take a correct netlist, inject one gate error (the
    "bug"), simulate the {e correct} netlist on random test vectors, and
    encode: for every vector a copy of the {e buggy} netlist with inputs
    and outputs pinned to the correct values.  Each gate carries one
    relaxation variable shared by all vector copies; freeing a gate
    lifts its function constraints everywhere.  The MaxSAT optimum is
    the minimum number of gates to free — with a single injected error
    and exposing vectors, exactly 1 — and the relaxed gate localizes the
    bug.

    Two encodings are offered: [partial] (pins and gate semantics hard,
    one soft unit per gate — the published formulation) and [plain]
    (everything soft, matching the paper's plain-MaxSAT Table 2 setup). *)

type instance = {
  wcnf : Msu_cnf.Wcnf.t;
  buggy_gate : int;  (** index of the mutated gate *)
  relax_vars : Msu_cnf.Lit.var array;
      (** relaxation variable of each gate; in a model of the optimum,
          the true ones are the error candidates (partial encoding) *)
  n_vectors : int;
}

val instance :
  ?gate_weight:(int -> int) ->
  Random.State.t ->
  n_inputs:int ->
  n_gates:int ->
  n_outputs:int ->
  n_vectors:int ->
  encoding:[ `Partial | `Plain ] ->
  instance
(** Vectors are resampled until at least one exposes the bug, so the
    instance is never trivially satisfiable.  [gate_weight] assigns a
    repair cost to each gate's soft clause (default 1); with weights the
    optimum is the cheapest consistent repair rather than the smallest
    ([`Partial] only). *)
