lib/gen/php.ml: Array Msu_cnf
