lib/gen/random_cnf.ml: Array Msu_cnf Msu_sat Random
