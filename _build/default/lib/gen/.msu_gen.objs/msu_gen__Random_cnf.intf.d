lib/gen/random_cnf.mli: Msu_cnf Random
