lib/gen/suites.ml: Array Atpg Bmc Debug Equiv List Msu_cnf Php Printf Random Random_cnf
