lib/gen/atpg.mli: Msu_circuit Msu_cnf Random
