lib/gen/php.mli: Msu_cnf
