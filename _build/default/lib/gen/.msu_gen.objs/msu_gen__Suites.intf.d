lib/gen/suites.mli: Msu_cnf
