lib/gen/equiv.ml: Array Msu_circuit Msu_cnf
