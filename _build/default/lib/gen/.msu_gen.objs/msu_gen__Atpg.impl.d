lib/gen/atpg.ml: Array List Msu_circuit Msu_cnf Random
