lib/gen/equiv.mli: Msu_circuit Msu_cnf Random
