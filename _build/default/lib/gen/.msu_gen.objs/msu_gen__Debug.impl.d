lib/gen/debug.ml: Array Msu_circuit Msu_cnf Random
