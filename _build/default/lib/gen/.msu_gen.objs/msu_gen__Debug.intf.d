lib/gen/debug.mli: Msu_cnf Random
