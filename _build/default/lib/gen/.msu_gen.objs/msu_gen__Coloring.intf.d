lib/gen/coloring.mli: Msu_cnf Random
