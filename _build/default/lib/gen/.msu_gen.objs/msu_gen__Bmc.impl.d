lib/gen/bmc.ml: Array List Msu_circuit Msu_cnf
