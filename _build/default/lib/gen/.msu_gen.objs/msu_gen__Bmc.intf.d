lib/gen/bmc.mli: Msu_circuit Msu_cnf
