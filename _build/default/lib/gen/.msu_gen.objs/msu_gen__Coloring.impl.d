lib/gen/coloring.ml: Array List Msu_cnf Random
