module Lit = Msu_cnf.Lit
module Wcnf = Msu_cnf.Wcnf

type graph = { n_vertices : int; edges : (int * int) list }

let random_graph st ~n_vertices ~edge_prob =
  let edges = ref [] in
  for u = 0 to n_vertices - 1 do
    for v = u + 1 to n_vertices - 1 do
      if Random.State.float st 1.0 < edge_prob then edges := (u, v) :: !edges
    done
  done;
  { n_vertices; edges = List.rev !edges }

let interval_graph st ~n_intervals ~horizon ~max_len =
  let intervals =
    Array.init n_intervals (fun _ ->
        let start = Random.State.int st horizon in
        let len = 1 + Random.State.int st max_len in
        (start, start + len))
  in
  let overlap (s1, e1) (s2, e2) = s1 < e2 && s2 < e1 in
  let edges = ref [] in
  for u = 0 to n_intervals - 1 do
    for v = u + 1 to n_intervals - 1 do
      if overlap intervals.(u) intervals.(v) then edges := (u, v) :: !edges
    done
  done;
  { n_vertices = n_intervals; edges = List.rev !edges }

let encode g ~colors =
  if colors < 1 then invalid_arg "Coloring.encode: need at least one color";
  let w = Wcnf.create () in
  Wcnf.ensure_vars w (g.n_vertices * colors);
  let x v c = Lit.pos ((v * colors) + c) in
  (* Hard: exactly one color per vertex. *)
  for v = 0 to g.n_vertices - 1 do
    Wcnf.add_hard w (Array.init colors (fun c -> x v c));
    for c1 = 0 to colors - 1 do
      for c2 = c1 + 1 to colors - 1 do
        Wcnf.add_hard w [| Lit.neg (x v c1); Lit.neg (x v c2) |]
      done
    done
  done;
  (* Soft: conflict-free edges, one clause per (edge, color). *)
  List.iter
    (fun (u, v) ->
      for c = 0 to colors - 1 do
        ignore (Wcnf.add_soft w [| Lit.neg (x u c); Lit.neg (x v c) |])
      done)
    g.edges;
  w

let conflicts g ~colors ~coloring =
  Array.iter
    (fun c -> if c < 0 || c >= colors then invalid_arg "Coloring.conflicts: color range")
    coloring;
  List.fold_left
    (fun acc (u, v) -> if coloring.(u) = coloring.(v) then acc + 1 else acc)
    0 g.edges

let min_conflicts_brute g ~colors =
  let total =
    let rec pow acc k = if k = 0 then acc else pow (acc * colors) (k - 1) in
    pow 1 g.n_vertices
  in
  if total > 2_000_000 then invalid_arg "Coloring.min_conflicts_brute: too large";
  let coloring = Array.make (max g.n_vertices 1) 0 in
  let best = ref max_int in
  for code = 0 to total - 1 do
    let c = ref code in
    for v = 0 to g.n_vertices - 1 do
      coloring.(v) <- !c mod colors;
      c := !c / colors
    done;
    best := min !best (conflicts g ~colors ~coloring)
  done;
  if g.n_vertices = 0 then 0 else !best
