module Circuit = Msu_circuit.Circuit
module Unroll = Msu_circuit.Unroll
module Formula = Msu_cnf.Formula
module Sink = Msu_cnf.Sink

let bit value i = value land (1 lsl i) <> 0

let eq_const c nodes value =
  Circuit.and_list c
    (List.mapi
       (fun i n -> if bit value i then n else Circuit.not_ c n)
       (Array.to_list nodes))

(* Ripple increment: returns state + 1 (modulo 2^width). *)
let increment c state =
  let carry = ref (Circuit.const c true) in
  Array.map
    (fun b ->
      let sum = Circuit.xor_ c b !carry in
      carry := Circuit.and_ c b !carry;
      sum)
    state

let counter_spec ~width ~limit ~target =
  if not (0 < limit && limit <= target && target < 1 lsl width) then
    invalid_arg "Bmc.counter_spec: need 0 < limit <= target < 2^width";
  Unroll.
    {
      n_latches = width;
      n_pi = 1;
      init = Array.make width false;
      next =
        (fun c state inputs ->
          let enable = inputs.(0) in
          let at_limit = eq_const c state (limit - 1) in
          let incremented = increment c state in
          Array.mapi
            (fun i b ->
              let counted = Circuit.mux c ~sel:at_limit (Circuit.const c false) incremented.(i) in
              Circuit.mux c ~sel:enable counted b)
            state);
      bad = (fun c state _inputs -> eq_const c state target);
    }

let lfsr_spec ~width ~taps =
  if width < 2 then invalid_arg "Bmc.lfsr_spec: width too small";
  let taps = List.sort_uniq compare (0 :: List.filter (fun t -> t < width) taps) in
  let init = Array.init width (fun i -> i = 0) in
  Unroll.
    {
      n_latches = width;
      n_pi = 1;
      init;
      next =
        (fun c state inputs ->
          let enable = inputs.(0) in
          let feedback =
            List.fold_left
              (fun acc t -> Circuit.xor_ c acc state.(t))
              (Circuit.const c false) taps
          in
          Array.mapi
            (fun i b ->
              let shifted = if i = width - 1 then feedback else state.(i + 1) in
              Circuit.mux c ~sel:enable shifted b)
            state);
      bad =
        (fun c state _inputs ->
          Circuit.and_list c (List.map (Circuit.not_ c) (Array.to_list state)));
    }

let formula_of_spec spec ~depth =
  let c, bad = Unroll.unroll spec ~k:depth in
  let f = Formula.create () in
  ignore (Circuit.assert_node c (Sink.of_formula f) bad);
  f

let counter_formula ~width ~limit ~target ~depth =
  formula_of_spec (counter_spec ~width ~limit ~target) ~depth

let lfsr_formula ~width ~taps ~depth = formula_of_spec (lfsr_spec ~width ~taps) ~depth
