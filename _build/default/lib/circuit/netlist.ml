module Lit = Msu_cnf.Lit

type kind = And | Or | Xor | Nand | Nor | Xnor | Not | Buf
type gate = { kind : kind; a : int; b : int }
type t = { n_inputs : int; gates : gate array; outputs : int array }

let signal_count nl = nl.n_inputs + Array.length nl.gates

let kind_to_string = function
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Nand -> "nand"
  | Nor -> "nor"
  | Xnor -> "xnor"
  | Not -> "not"
  | Buf -> "buf"

let validate nl =
  Array.iteri
    (fun i g ->
      let limit = nl.n_inputs + i in
      let binary = match g.kind with Not | Buf -> false | _ -> true in
      if g.a < 0 || g.a >= limit then invalid_arg "Netlist.validate: operand a";
      if binary && (g.b < 0 || g.b >= limit) then invalid_arg "Netlist.validate: operand b")
    nl.gates;
  Array.iter
    (fun o -> if o < 0 || o >= signal_count nl then invalid_arg "Netlist.validate: output")
    nl.outputs

let eval_gate kind va vb =
  match kind with
  | And -> va && vb
  | Or -> va || vb
  | Xor -> va <> vb
  | Nand -> not (va && vb)
  | Nor -> not (va || vb)
  | Xnor -> va = vb
  | Not -> not va
  | Buf -> va

let eval nl inputs =
  let values = Array.make (signal_count nl) false in
  for i = 0 to nl.n_inputs - 1 do
    values.(i) <- i < Array.length inputs && inputs.(i)
  done;
  Array.iteri
    (fun i g ->
      let vb = match g.kind with Not | Buf -> false | _ -> values.(g.b) in
      values.(nl.n_inputs + i) <- eval_gate g.kind values.(g.a) vb)
    nl.gates;
  values

let eval_outputs nl inputs =
  let values = eval nl inputs in
  Array.map (fun o -> values.(o)) nl.outputs

let binary_kinds = [| And; Or; Xor; Nand; Nor; Xnor |]

let random st ~n_inputs ~n_gates ~n_outputs =
  if n_inputs < 1 || n_gates < 1 then invalid_arg "Netlist.random: too small";
  (* Operands are biased toward recent signals for depth: half of the
     picks come from the most recent quarter of the available range. *)
  let pick limit =
    if limit <= 1 then 0
    else if Random.State.bool st then
      let recent = max 1 (limit / 4) in
      limit - 1 - Random.State.int st recent
    else Random.State.int st limit
  in
  let gates =
    Array.init n_gates (fun i ->
        let limit = n_inputs + i in
        let kind =
          if Random.State.int st 8 = 0 then Not
          else binary_kinds.(Random.State.int st (Array.length binary_kinds))
        in
        { kind; a = pick limit; b = pick limit })
  in
  let total = n_inputs + n_gates in
  (* Outputs are the last signals, which depend on most of the logic. *)
  let outputs = Array.init n_outputs (fun i -> total - 1 - (i mod n_gates)) in
  let nl = { n_inputs; gates; outputs } in
  validate nl;
  nl

let mutate_gate st nl =
  let i = Random.State.int st (Array.length nl.gates) in
  let g = nl.gates.(i) in
  let candidates =
    match g.kind with
    | Not | Buf -> [| (if g.kind = Not then Buf else Not) |]
    | _ -> Array.of_list (List.filter (fun k -> k <> g.kind) (Array.to_list binary_kinds))
  in
  let kind' = candidates.(Random.State.int st (Array.length candidates)) in
  let gates' = Array.copy nl.gates in
  gates'.(i) <- { g with kind = kind' };
  ({ nl with gates = gates' }, i)

(* Two-sided Tseitin clauses for z = kind(a, b). *)
let emit_gate (sink : Msu_cnf.Sink.t) kind z a b =
  let n = Lit.neg in
  match kind with
  | Buf ->
      sink.emit [| n z; a |];
      sink.emit [| z; n a |]
  | Not ->
      sink.emit [| n z; n a |];
      sink.emit [| z; a |]
  | And ->
      sink.emit [| n z; a |];
      sink.emit [| n z; b |];
      sink.emit [| z; n a; n b |]
  | Or ->
      sink.emit [| z; n a |];
      sink.emit [| z; n b |];
      sink.emit [| n z; a; b |]
  | Nand ->
      sink.emit [| z; a |];
      sink.emit [| z; b |];
      sink.emit [| n z; n a; n b |]
  | Nor ->
      sink.emit [| n z; n a |];
      sink.emit [| n z; n b |];
      sink.emit [| z; a; b |]
  | Xor ->
      sink.emit [| n z; a; b |];
      sink.emit [| n z; n a; n b |];
      sink.emit [| z; n a; b |];
      sink.emit [| z; a; n b |]
  | Xnor ->
      sink.emit [| z; a; b |];
      sink.emit [| z; n a; n b |];
      sink.emit [| n z; n a; b |];
      sink.emit [| n z; a; n b |]

let tseitin ?inputs nl (sink : Msu_cnf.Sink.t) =
  let input_lits =
    match inputs with
    | Some lits ->
        if Array.length lits <> nl.n_inputs then invalid_arg "Netlist.tseitin: inputs";
        lits
    | None -> Array.init nl.n_inputs (fun _ -> Lit.pos (sink.fresh_var ()))
  in
  let lits = Array.make (signal_count nl) (Lit.pos 0) in
  Array.blit input_lits 0 lits 0 nl.n_inputs;
  Array.iteri
    (fun i g ->
      let z = Lit.pos (sink.fresh_var ()) in
      let b = match g.kind with Not | Buf -> z (* unused *) | _ -> lits.(g.b) in
      emit_gate sink g.kind z lits.(g.a) b;
      lits.(nl.n_inputs + i) <- z)
    nl.gates;
  lits

let miter nl1 nl2 (sink : Msu_cnf.Sink.t) =
  if nl1.n_inputs <> nl2.n_inputs || Array.length nl1.outputs <> Array.length nl2.outputs
  then invalid_arg "Netlist.miter: interface mismatch";
  let inputs = Array.init nl1.n_inputs (fun _ -> Lit.pos (sink.fresh_var ())) in
  let l1 = tseitin ~inputs nl1 sink in
  let l2 = tseitin ~inputs nl2 sink in
  let diffs =
    Array.map2
      (fun o1 o2 ->
        let z = Lit.pos (sink.fresh_var ()) in
        emit_gate sink Xor z l1.(o1) l2.(o2);
        z)
      nl1.outputs nl2.outputs
  in
  sink.emit diffs
