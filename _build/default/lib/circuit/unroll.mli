(** Bounded unrolling of sequential circuits.

    A sequential design is described functionally: given a builder, the
    current latch values and the step's primary inputs, [next] produces
    the next latch values and [bad] the property-violation signal.
    {!unroll} then expands [k] time frames into one combinational
    circuit whose output is "the property is violated at some step
    <= k" — the classic BMC formulation (Biere et al., TACAS'99), which
    is one of the industrial instance families the msu4 paper draws on. *)

type spec = {
  n_latches : int;
  n_pi : int;  (** primary inputs consumed per time frame *)
  init : bool array;  (** initial latch values; length [n_latches] *)
  next : Circuit.t -> Circuit.node array -> Circuit.node array -> Circuit.node array;
      (** [next c state inputs] = next state *)
  bad : Circuit.t -> Circuit.node array -> Circuit.node array -> Circuit.node;
      (** [bad c state inputs] = property violated in this frame *)
}

val unroll : spec -> k:int -> Circuit.t * Circuit.node
(** [unroll spec ~k] builds the [k]-frame unrolling ([k >= 1]); the
    returned node is the disjunction of the per-frame [bad] signals.
    Primary inputs are allocated frame-major: frame [t] uses inputs
    [t * n_pi .. (t+1) * n_pi - 1]. *)

val simulate : spec -> inputs:bool array array -> bool
(** Reference semantics: run the spec over the given per-frame inputs
    and report whether [bad] ever holds.  Used to cross-check
    {!unroll}. *)
