(** ASCII AIGER (aag) reader and writer.

    AIGER is the interchange format of the hardware model-checking
    community (Biere, 2007): combinational and sequential circuits as
    And-Inverter Graphs.  Supporting it makes the circuit substrate
    interoperable with standard benchmark sets and tools.

    This module covers the ASCII variant ([aag]), both purely
    combinational files and sequential ones with latches.  Symbols and
    comments are ignored on input and omitted on output. *)

type t = {
  max_var : int;
  inputs : int array;  (** AIGER literals (even, positive) *)
  latches : (int * int) array;  (** (current-state literal, next-state literal) *)
  outputs : int array;  (** AIGER literals, possibly negated/constant *)
  ands : (int * int * int) array;  (** (lhs, rhs0, rhs1); lhs even *)
}

exception Parse_error of int * string

val parse : string -> t
(** Parse the contents of an [aag] file.  @raise Parse_error *)

val parse_file : string -> t
val print : Format.formatter -> t -> unit
val write_file : string -> t -> unit

val to_circuit : t -> Circuit.t * Circuit.node array
(** Combinational import: latches are treated as additional primary
    inputs (their next-state functions are ignored); returns the builder
    and the output nodes.  Input order: AIGER inputs first, then latch
    state bits. *)

val of_netlist : Netlist.t -> t
(** Export a netlist as a purely combinational AIG (gates are decomposed
    into ANDs and inverters). *)

val to_unroll_spec : t -> init:bool array -> Unroll.spec
(** Sequential import for BMC: latches become the state, the first
    output is the bad-state property.
    @raise Invalid_argument when the AIG has no outputs or [init] has
    the wrong length. *)
