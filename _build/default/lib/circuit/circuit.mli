(** Hash-consed combinational circuits.

    A lightweight structurally-hashed gate network (in the spirit of an
    AIG, but with a full gate library for readability).  Constructors
    perform constant folding and local simplification, so structurally
    equal subcircuits are shared and trivial gates never materialize.

    Circuits convert to CNF by Tseitin transformation ({!tseitin}), which
    is how the generators build equivalence-checking and BMC instances. *)

type t
(** A circuit builder: owns the node table. *)

type node
(** A signal in some builder.  Nodes from different builders must not be
    mixed (unchecked). *)

val create : unit -> t

val input : t -> node
(** Allocates the next primary input. *)

val num_inputs : t -> int
val num_nodes : t -> int

val const : t -> bool -> node
val not_ : t -> node -> node
val and_ : t -> node -> node -> node
val or_ : t -> node -> node -> node
val xor_ : t -> node -> node -> node
val nand_ : t -> node -> node -> node
val nor_ : t -> node -> node -> node
val xnor_ : t -> node -> node -> node

val mux : t -> sel:node -> node -> node -> node
(** [mux c ~sel a b] is [sel ? a : b]. *)

val and_list : t -> node list -> node
(** Conjunction; [true] for the empty list. *)

val or_list : t -> node list -> node
(** Disjunction; [false] for the empty list. *)

val eval : t -> node -> bool array -> bool
(** [eval c n inputs] simulates the cone of [n]; [inputs.(i)] is the
    value of input [i] (missing inputs read as false). *)

val equal_node : node -> node -> bool
(** Structural equality (constant time thanks to hash-consing). *)

type cnf_map = {
  input_lits : Msu_cnf.Lit.t array;  (** literal of each primary input *)
  lit_of : node -> Msu_cnf.Lit.t;
      (** literal of any node inside the encoded cones
          @raise Not_found for nodes outside them *)
}

val tseitin :
  ?input_lits:Msu_cnf.Lit.t array -> t -> Msu_cnf.Sink.t -> node list -> cnf_map
(** Encodes the cones of the given roots with the standard two-sided
    Tseitin clauses.  Every primary input of the circuit receives a
    literal (inputs outside the cones are simply unconstrained).
    [input_lits] supplies the input literals — e.g. shared with another
    encoded circuit to form a miter; fresh ones are allocated when
    omitted.  @raise Invalid_argument on a length mismatch. *)

val assert_node : t -> Msu_cnf.Sink.t -> node -> cnf_map
(** [tseitin] of the single root plus a unit clause forcing it true. *)
