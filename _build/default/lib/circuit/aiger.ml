type t = {
  max_var : int;
  inputs : int array;
  latches : (int * int) array;
  outputs : int array;
  ands : (int * int * int) array;
}

exception Parse_error of int * string

(* ---------------- parsing ---------------- *)

let parse text =
  let lines = String.split_on_char '\n' text in
  let line_no = ref 0 in
  let fail msg = raise (Parse_error (!line_no, msg)) in
  let next_line = ref lines in
  let read_line () =
    match !next_line with
    | [] -> fail "unexpected end of file"
    | l :: rest ->
        next_line := rest;
        incr line_no;
        String.trim l
  in
  let ints_of_line line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some n when n >= 0 -> n
           | _ -> fail (Printf.sprintf "expected a literal, got %S" s))
  in
  let header = read_line () in
  let m, i, l, o, a =
    match String.split_on_char ' ' header |> List.filter (( <> ) "") with
    | [ "aag"; m; i; l; o; a ] -> (
        match List.map int_of_string_opt [ m; i; l; o; a ] with
        | [ Some m; Some i; Some l; Some o; Some a ] -> (m, i, l, o, a)
        | _ -> fail "malformed header counts")
    | "aig" :: _ -> fail "binary aig format not supported; use ASCII aag"
    | _ -> fail "expected 'aag M I L O A' header"
  in
  let check_lit lit =
    if lit > (2 * m) + 1 then fail (Printf.sprintf "literal %d exceeds max var %d" lit m)
  in
  let inputs =
    Array.init i (fun _ ->
        match ints_of_line (read_line ()) with
        | [ lit ] when lit land 1 = 0 && lit >= 2 ->
            check_lit lit;
            lit
        | _ -> fail "input must be one positive literal")
  in
  let latches =
    Array.init l (fun _ ->
        match ints_of_line (read_line ()) with
        | [ cur; next ] | [ cur; next; _ (* optional reset *) ] ->
            if cur land 1 = 1 || cur < 2 then fail "latch literal must be even";
            check_lit cur;
            check_lit next;
            (cur, next)
        | _ -> fail "latch line must be 'current next [reset]'")
  in
  let outputs =
    Array.init o (fun _ ->
        match ints_of_line (read_line ()) with
        | [ lit ] ->
            check_lit lit;
            lit
        | _ -> fail "output must be one literal")
  in
  let ands =
    Array.init a (fun _ ->
        match ints_of_line (read_line ()) with
        | [ lhs; r0; r1 ] ->
            if lhs land 1 = 1 || lhs < 2 then fail "and lhs must be even";
            check_lit lhs;
            check_lit r0;
            check_lit r1;
            (lhs, r0, r1)
        | _ -> fail "and line must be 'lhs rhs0 rhs1'")
  in
  { max_var = m; inputs; latches; outputs; ands }

let parse_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let print ppf t =
  Format.fprintf ppf "aag %d %d %d %d %d@." t.max_var (Array.length t.inputs)
    (Array.length t.latches) (Array.length t.outputs) (Array.length t.ands);
  Array.iter (fun lit -> Format.fprintf ppf "%d@." lit) t.inputs;
  Array.iter (fun (cur, next) -> Format.fprintf ppf "%d %d@." cur next) t.latches;
  Array.iter (fun lit -> Format.fprintf ppf "%d@." lit) t.outputs;
  Array.iter (fun (lhs, r0, r1) -> Format.fprintf ppf "%d %d %d@." lhs r0 r1) t.ands

let write_file path t =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      let ppf = Format.formatter_of_out_channel oc in
      print ppf t;
      Format.pp_print_flush ppf ())

(* ---------------- circuit conversion ---------------- *)

(* Build nodes for every AIG variable given the nodes of inputs and
   latch states; returns a literal->node resolver. *)
let build_nodes c t ~input_nodes ~latch_nodes =
  let var_node = Array.make (t.max_var + 1) (Circuit.const c false) in
  Array.iteri (fun k lit -> var_node.(lit / 2) <- input_nodes.(k)) t.inputs;
  Array.iteri (fun k (cur, _) -> var_node.(cur / 2) <- latch_nodes.(k)) t.latches;
  let node_of lit =
    if lit = 0 then Circuit.const c false
    else if lit = 1 then Circuit.const c true
    else begin
      let n = var_node.(lit / 2) in
      if lit land 1 = 0 then n else Circuit.not_ c n
    end
  in
  Array.iter
    (fun (lhs, r0, r1) -> var_node.(lhs / 2) <- Circuit.and_ c (node_of r0) (node_of r1))
    t.ands;
  node_of

let to_circuit t =
  let c = Circuit.create () in
  let input_nodes = Array.map (fun _ -> Circuit.input c) t.inputs in
  let latch_nodes = Array.map (fun _ -> Circuit.input c) t.latches in
  let node_of = build_nodes c t ~input_nodes ~latch_nodes in
  (c, Array.map node_of t.outputs)

let to_unroll_spec t ~init =
  if Array.length t.outputs = 0 then invalid_arg "Aiger.to_unroll_spec: no outputs";
  if Array.length init <> Array.length t.latches then
    invalid_arg "Aiger.to_unroll_spec: init length mismatch";
  Unroll.
    {
      n_latches = Array.length t.latches;
      n_pi = Array.length t.inputs;
      init;
      next =
        (fun c state inputs ->
          let node_of = build_nodes c t ~input_nodes:inputs ~latch_nodes:state in
          Array.map (fun (_, next) -> node_of next) t.latches);
      bad =
        (fun c state inputs ->
          let node_of = build_nodes c t ~input_nodes:inputs ~latch_nodes:state in
          node_of t.outputs.(0));
    }

(* ---------------- netlist export ---------------- *)

let of_netlist (nl : Netlist.t) =
  (* Every netlist signal maps to an AIGER literal; gates allocate fresh
     AND variables as needed. *)
  let next_var = ref (nl.Netlist.n_inputs + 1) in
  let ands = ref [] in
  let fresh_and r0 r1 =
    let v = !next_var in
    incr next_var;
    ands := ((2 * v), r0, r1) :: !ands;
    2 * v
  in
  let aig_and a b = fresh_and a b in
  let aig_or a b = fresh_and (a lxor 1) (b lxor 1) lxor 1 in
  let aig_xor a b =
    (* a xor b = not (not(a & not b) & not(not a & b)) *)
    let x1 = aig_and a (b lxor 1) in
    let x2 = aig_and (a lxor 1) b in
    aig_or x1 x2
  in
  let signal = Array.make (Netlist.signal_count nl) 0 in
  for k = 0 to nl.Netlist.n_inputs - 1 do
    signal.(k) <- 2 * (k + 1)
  done;
  Array.iteri
    (fun gi (g : Netlist.gate) ->
      let a = signal.(g.Netlist.a) in
      let b () = signal.(g.Netlist.b) in
      let lit =
        match g.Netlist.kind with
        | Netlist.And -> aig_and a (b ())
        | Netlist.Or -> aig_or a (b ())
        | Netlist.Xor -> aig_xor a (b ())
        | Netlist.Nand -> aig_and a (b ()) lxor 1
        | Netlist.Nor -> aig_or a (b ()) lxor 1
        | Netlist.Xnor -> aig_xor a (b ()) lxor 1
        | Netlist.Not -> a lxor 1
        | Netlist.Buf -> a
      in
      signal.(nl.Netlist.n_inputs + gi) <- lit)
    nl.Netlist.gates;
  {
    max_var = !next_var - 1;
    inputs = Array.init nl.Netlist.n_inputs (fun k -> 2 * (k + 1));
    latches = [||];
    outputs = Array.map (fun o -> signal.(o)) nl.Netlist.outputs;
    ands = Array.of_list (List.rev !ands);
  }
