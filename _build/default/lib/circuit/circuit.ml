module Vec = Msu_cnf.Vec
module Lit = Msu_cnf.Lit

type node = int

type gate =
  | Gconst of bool
  | Ginput of int
  | Gnot of node
  | Gand of node * node
  | Gor of node * node
  | Gxor of node * node

type t = {
  gates : gate Vec.t;
  unique : (gate, node) Hashtbl.t;
  mutable n_inputs : int;
}

let create () =
  let c =
    { gates = Vec.create ~dummy:(Gconst false); unique = Hashtbl.create 1024; n_inputs = 0 }
  in
  (* Nodes 0 and 1 are the constants. *)
  Vec.push c.gates (Gconst false);
  Vec.push c.gates (Gconst true);
  c

let false_node = 0
let true_node = 1
let gate c n = Vec.get c.gates n
let num_inputs c = c.n_inputs
let num_nodes c = Vec.size c.gates
let const _c b = if b then true_node else false_node
let equal_node (a : node) b = a = b

let hashcons c g =
  match Hashtbl.find_opt c.unique g with
  | Some n -> n
  | None ->
      let n = Vec.size c.gates in
      Vec.push c.gates g;
      Hashtbl.add c.unique g n;
      n

let input c =
  let i = c.n_inputs in
  c.n_inputs <- i + 1;
  hashcons c (Ginput i)

let not_ c a =
  if a = false_node then true_node
  else if a = true_node then false_node
  else match gate c a with Gnot x -> x | _ -> hashcons c (Gnot a)

(* Normalize commutative operands so (a, b) and (b, a) share. *)
let ordered a b = if a <= b then (a, b) else (b, a)

let complementary c a b =
  (match gate c a with Gnot x -> x = b | _ -> false)
  || match gate c b with Gnot x -> x = a | _ -> false

let and_ c a b =
  if a = false_node || b = false_node then false_node
  else if a = true_node then b
  else if b = true_node then a
  else if a = b then a
  else if complementary c a b then false_node
  else
    let a, b = ordered a b in
    hashcons c (Gand (a, b))

let or_ c a b =
  if a = true_node || b = true_node then true_node
  else if a = false_node then b
  else if b = false_node then a
  else if a = b then a
  else if complementary c a b then true_node
  else
    let a, b = ordered a b in
    hashcons c (Gor (a, b))

let xor_ c a b =
  if a = b then false_node
  else if complementary c a b then true_node
  else if a = false_node then b
  else if b = false_node then a
  else if a = true_node then not_ c b
  else if b = true_node then not_ c a
  else
    let a, b = ordered a b in
    hashcons c (Gxor (a, b))

let nand_ c a b = not_ c (and_ c a b)
let nor_ c a b = not_ c (or_ c a b)
let xnor_ c a b = not_ c (xor_ c a b)
let mux c ~sel a b = or_ c (and_ c sel a) (and_ c (not_ c sel) b)
let and_list c = List.fold_left (and_ c) true_node
let or_list c = List.fold_left (or_ c) false_node

let eval c n inputs =
  let memo = Array.make (num_nodes c) (-1) in
  let rec go n =
    if memo.(n) >= 0 then memo.(n) = 1
    else begin
      let v =
        match gate c n with
        | Gconst b -> b
        | Ginput i -> i < Array.length inputs && inputs.(i)
        | Gnot a -> not (go a)
        | Gand (a, b) -> go a && go b
        | Gor (a, b) -> go a || go b
        | Gxor (a, b) -> go a <> go b
      in
      memo.(n) <- (if v then 1 else 0);
      v
    end
  in
  go n

type cnf_map = { input_lits : Lit.t array; lit_of : node -> Lit.t }

let tseitin ?input_lits c (sink : Msu_cnf.Sink.t) roots =
  let input_lits =
    match input_lits with
    | Some lits ->
        if Array.length lits <> c.n_inputs then invalid_arg "Circuit.tseitin: input_lits";
        lits
    | None -> Array.init c.n_inputs (fun _ -> Lit.pos (sink.fresh_var ()))
  in
  let lits : (node, Lit.t) Hashtbl.t = Hashtbl.create 256 in
  (* Constants get a variable pinned by a unit clause, allocated lazily. *)
  let rec lit_of n =
    match Hashtbl.find_opt lits n with
    | Some l -> l
    | None ->
        let l =
          match gate c n with
          | Gconst b ->
              let l = Lit.pos (sink.fresh_var ()) in
              sink.emit [| (if b then l else Lit.neg l) |];
              l
          | Ginput i -> input_lits.(i)
          | Gnot a -> Lit.neg (lit_of a)
          | Gand (a, b) ->
              let la = lit_of a and lb = lit_of b in
              let z = Lit.pos (sink.fresh_var ()) in
              sink.emit [| Lit.neg z; la |];
              sink.emit [| Lit.neg z; lb |];
              sink.emit [| z; Lit.neg la; Lit.neg lb |];
              z
          | Gor (a, b) ->
              let la = lit_of a and lb = lit_of b in
              let z = Lit.pos (sink.fresh_var ()) in
              sink.emit [| z; Lit.neg la |];
              sink.emit [| z; Lit.neg lb |];
              sink.emit [| Lit.neg z; la; lb |];
              z
          | Gxor (a, b) ->
              let la = lit_of a and lb = lit_of b in
              let z = Lit.pos (sink.fresh_var ()) in
              sink.emit [| Lit.neg z; la; lb |];
              sink.emit [| Lit.neg z; Lit.neg la; Lit.neg lb |];
              sink.emit [| z; Lit.neg la; lb |];
              sink.emit [| z; la; Lit.neg lb |];
              z
        in
        Hashtbl.replace lits n l;
        l
  in
  List.iter (fun r -> ignore (lit_of r)) roots;
  {
    input_lits;
    lit_of =
      (fun n -> match Hashtbl.find_opt lits n with Some l -> l | None -> raise Not_found);
  }

let assert_node c sink n =
  let map = tseitin c sink [ n ] in
  sink.emit [| map.lit_of n |];
  map
