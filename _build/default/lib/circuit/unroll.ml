type spec = {
  n_latches : int;
  n_pi : int;
  init : bool array;
  next : Circuit.t -> Circuit.node array -> Circuit.node array -> Circuit.node array;
  bad : Circuit.t -> Circuit.node array -> Circuit.node array -> Circuit.node;
}

let check spec =
  if Array.length spec.init <> spec.n_latches then
    invalid_arg "Unroll: init length mismatch"

let unroll spec ~k =
  check spec;
  if k < 1 then invalid_arg "Unroll.unroll: k must be >= 1";
  let c = Circuit.create () in
  let state = ref (Array.map (Circuit.const c) spec.init) in
  let bads = ref [] in
  for _t = 1 to k do
    let inputs = Array.init spec.n_pi (fun _ -> Circuit.input c) in
    bads := spec.bad c !state inputs :: !bads;
    state := spec.next c !state inputs;
    if Array.length !state <> spec.n_latches then
      invalid_arg "Unroll: next-state length mismatch"
  done;
  (c, Circuit.or_list c !bads)

let simulate spec ~inputs =
  check spec;
  (* Evaluate the functional spec through a throwaway builder so that
     the same [next]/[bad] definitions serve both paths. *)
  let violated = ref false in
  let state = ref (Array.copy spec.init) in
  Array.iter
    (fun frame ->
      if not !violated then begin
        let c = Circuit.create () in
        let state_nodes = Array.map (Circuit.const c) !state in
        let input_nodes = Array.init spec.n_pi (fun _ -> Circuit.input c) in
        let bad_node = spec.bad c state_nodes input_nodes in
        let next_nodes = spec.next c state_nodes input_nodes in
        if Circuit.eval c bad_node frame then violated := true
        else state := Array.map (fun n -> Circuit.eval c n frame) next_nodes
      end)
    inputs;
  !violated
