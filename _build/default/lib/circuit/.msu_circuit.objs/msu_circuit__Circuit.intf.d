lib/circuit/circuit.mli: Msu_cnf
