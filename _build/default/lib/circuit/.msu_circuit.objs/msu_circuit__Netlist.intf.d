lib/circuit/netlist.mli: Msu_cnf Random
