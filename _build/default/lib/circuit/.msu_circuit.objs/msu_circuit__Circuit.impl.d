lib/circuit/circuit.ml: Array Hashtbl List Msu_cnf
