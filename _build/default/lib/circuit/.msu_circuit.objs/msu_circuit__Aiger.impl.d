lib/circuit/aiger.ml: Array Circuit Format Fun List Netlist Printf String Unroll
