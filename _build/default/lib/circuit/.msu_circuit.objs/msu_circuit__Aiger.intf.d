lib/circuit/aiger.mli: Circuit Format Netlist Unroll
