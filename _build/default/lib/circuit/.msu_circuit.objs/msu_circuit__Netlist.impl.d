lib/circuit/netlist.ml: Array List Msu_cnf Random
