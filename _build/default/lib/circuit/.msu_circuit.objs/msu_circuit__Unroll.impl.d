lib/circuit/unroll.ml: Array Circuit
