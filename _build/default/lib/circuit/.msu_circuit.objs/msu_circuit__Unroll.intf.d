lib/circuit/unroll.mli: Circuit
