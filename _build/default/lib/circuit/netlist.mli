(** Flat structural netlists.

    Unlike {!Circuit}, a netlist is a plain array of gates addressed by
    signal index, with no hashing or simplification.  That makes it the
    right representation for {e fault injection}: mutating one gate's
    function models a design error, which is exactly how the
    design-debugging MaxSAT benchmarks of Safarpour et al. (FMCAD'07)
    are constructed.

    Signals [0 .. n_inputs-1] are primary inputs; gate [i] drives signal
    [n_inputs + i]; gate operands must reference earlier signals. *)

type kind = And | Or | Xor | Nand | Nor | Xnor | Not | Buf

type gate = { kind : kind; a : int; b : int }
(** [b] is ignored for [Not] and [Buf]. *)

type t = { n_inputs : int; gates : gate array; outputs : int array }

val signal_count : t -> int

val validate : t -> unit
(** @raise Invalid_argument on dangling operand references or outputs. *)

val eval_gate : kind -> bool -> bool -> bool

val eval : t -> bool array -> bool array
(** [eval nl inputs] returns the value of every signal. *)

val eval_outputs : t -> bool array -> bool array

val random : Random.State.t -> n_inputs:int -> n_gates:int -> n_outputs:int -> t
(** A random well-formed netlist whose operands are biased toward recent
    signals, giving deep, reconvergent cones like synthesized logic. *)

val mutate_gate : Random.State.t -> t -> t * int
(** Returns a copy with one randomly chosen gate's [kind] replaced by a
    different kind (a "design error"), and the gate's index. *)

val tseitin :
  ?inputs:Msu_cnf.Lit.t array -> t -> Msu_cnf.Sink.t -> Msu_cnf.Lit.t array
(** Encodes every gate; returns one literal per signal.  [inputs]
    supplies the input literals (shared between two netlists to build a
    miter); fresh ones are allocated when omitted. *)

val miter : t -> t -> Msu_cnf.Sink.t -> unit
(** Asserts that the two netlists (same interface) differ on at least
    one output for some input: the resulting clause set is satisfiable
    iff the netlists are {e not} equivalent.
    @raise Invalid_argument on interface mismatch. *)

val kind_to_string : kind -> string

val emit_gate :
  Msu_cnf.Sink.t -> kind -> Msu_cnf.Lit.t -> Msu_cnf.Lit.t -> Msu_cnf.Lit.t -> unit
(** [emit_gate sink kind z a b] emits the two-sided Tseitin clauses for
    [z = kind(a, b)] ([b] ignored for [Not]/[Buf]).  Exposed so that
    encoders needing per-gate clause interception (e.g. design-debugging
    relaxation groups) can reuse the gate semantics. *)
