(* Anatomy of msu4's bounds and of the cardinality encodings.

   Part 1 traces msu4 on a pigeonhole instance, showing the interplay
   of UNSAT iterations (which raise the lower bound) and SAT iterations
   (which lower the upper bound) — Propositions 1 and 2 of the paper.

   Part 2 measures, for each cardinality encoding, the CNF size of
   "at most k of n" constraints — the space trade-off behind the two
   msu4 variants (BDD vs sorting network).

     dune exec examples/bounds_anatomy.exe *)

module Card = Msu_card.Card
module Lit = Msu_cnf.Lit
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  (* Part 1: bounds evolution. *)
  let f = Msu_gen.Php.formula 4 in
  let w = Msu_cnf.Wcnf.of_formula f in
  Printf.printf "msu4 on PHP(5,4) — %d clauses, optimum drops exactly one:\n"
    (Msu_cnf.Wcnf.num_soft w);
  let config =
    {
      T.default_config with
      T.sink =
        Msu_obs.Obs.of_fn (fun e ->
            Printf.printf "  %s\n" (Msu_obs.Obs.Event.to_string e));
    }
  in
  let r = Msu_maxsat.Msu4.solve ~config w in
  Format.printf "  => %a@.@." T.pp_outcome r.T.outcome;

  (* Part 2: encoding sizes. *)
  let n = 64 in
  Printf.printf "CNF size of \"at most k of %d\" per encoding (clauses/aux vars):\n" n;
  let ks = [ 1; 2; 8; 32 ] in
  Printf.printf "  %-12s" "k";
  List.iter (fun k -> Printf.printf "%16d" k) ks;
  print_newline ();
  List.iter
    (fun enc ->
      Printf.printf "  %-12s" (Card.encoding_to_string enc);
      List.iter
        (fun k ->
          let clauses = ref 0 and vars = ref 0 in
          let sink =
            Msu_cnf.Sink.
              {
                fresh_var =
                  (fun () ->
                    incr vars;
                    n + !vars);
                emit = (fun _ -> incr clauses);
              }
          in
          let lits = Array.init n Lit.pos in
          (try Card.at_most sink enc lits k with Invalid_argument _ -> clauses := -1);
          if !clauses < 0 then Printf.printf "%16s" "too large"
          else Printf.printf "%10d/%5d" !clauses !vars)
        ks;
      print_newline ())
    Card.all_encodings;

  print_newline ();
  print_endline "The paper's v1 = bdd, v2 = sortnet; totalizer/seqcounter are the";
  print_endline "encodings later core-guided solvers adopted."
