(* Quickstart: build a MaxSAT instance through the API and solve it
   with msu4, watching the algorithm's bounds converge.

   The formula is Example 2 of the paper (DATE'08): eight clauses over
   four variables, of which at most six can be satisfied.

     dune exec examples/quickstart.exe *)

module Wcnf = Msu_cnf.Wcnf
module Lit = Msu_cnf.Lit
module M = Msu_maxsat.Maxsat
module T = Msu_maxsat.Types

let () =
  let w = Wcnf.create () in
  let lit d = Lit.of_dimacs d in
  List.iter
    (fun c -> ignore (Wcnf.add_soft w (Array.of_list (List.map lit c))))
    [ [ 1 ]; [ -1; -2 ]; [ 2 ]; [ -1; -3 ]; [ 3 ]; [ -2; -3 ]; [ 1; -4 ]; [ -1; 4 ] ];
  Printf.printf "Instance: %d variables, %d soft clauses\n\n" (Wcnf.num_vars w)
    (Wcnf.num_soft w);

  Printf.printf "Running msu4 (sorting-network encoding, the paper's v2):\n";
  let config =
    {
      T.default_config with
      T.sink =
        Msu_obs.Obs.of_fn (fun e ->
            Printf.printf "  %s\n" (Msu_obs.Obs.Event.to_string e));
    }
  in
  let r = M.solve ~config M.Msu4_v2 w in
  Format.printf "\nResult: %a@." T.pp_result r;
  (match T.max_satisfied w r with
  | Some k -> Printf.printf "MaxSAT solution: %d of %d clauses satisfiable\n" k (Wcnf.num_soft w)
  | None -> ());
  (match r.T.model with
  | Some m ->
      Printf.printf "Witness assignment:";
      for v = 0 to Wcnf.num_vars w - 1 do
        Printf.printf " x%d=%b" (v + 1) (v < Array.length m && m.(v))
      done;
      print_newline ()
  | None -> ());

  (* Every algorithm in the library agrees on the optimum. *)
  print_newline ();
  Printf.printf "All algorithms on the same instance:\n";
  List.iter
    (fun alg ->
      let r = M.solve alg w in
      match r.T.outcome with
      | T.Optimum c ->
          Printf.printf "  %-11s optimum cost %d  (%.4fs, %d SAT calls)\n"
            (M.algorithm_to_string alg) c r.T.elapsed r.T.stats.T.sat_calls
      | o -> Format.printf "  %-11s %a@." (M.algorithm_to_string alg) T.pp_outcome o)
    M.all_algorithms
